#ifndef MGBR_COMMON_IO_FILE_H_
#define MGBR_COMMON_IO_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mgbr {
namespace io {

/// Thin POSIX file wrapper: the single choke point for the library's
/// durable I/O (checkpoints, CSV/dataset files). Every read and write
/// consults the fault-injection plan (common/fault.h), so crash and
/// corruption scenarios are testable end-to-end without mocking.
///
/// Writes are unbuffered (straight to the fd); callers that need
/// durability call Sync() before Close() and publish via AtomicRename.
class File {
 public:
  File() = default;
  ~File();  // closes silently; call Close() to observe errors

  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;

  /// Opens for writing, creating/truncating (0644).
  static Result<File> OpenForWrite(const std::string& path);

  /// Opens an existing file for reading.
  static Result<File> OpenForRead(const std::string& path);

  /// Writes all `n` bytes (retrying on partial writes/EINTR).
  Status Write(const void* data, size_t n);

  /// Reads up to `n` bytes; `*n_read` is 0 at EOF.
  Status Read(void* out, size_t n, size_t* n_read);

  /// Reads exactly `n` bytes; IoError on EOF before `n`.
  Status ReadExact(void* out, size_t n);

  /// File size via fstat.
  Result<int64_t> Size() const;

  /// fsync: waits until written data reaches the device.
  Status Sync();

  /// Closes the descriptor, reporting close-time errors.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// Reads a whole file into a string through io::File (fault-injectable).
Result<std::string> ReadFileToString(const std::string& path);

/// Renames `from` onto `to` (atomic within a filesystem), then fsyncs
/// the parent directory of `to` so the rename itself is durable — the
/// publish step of the write-temp -> fsync -> rename checkpoint
/// protocol.
Status AtomicRename(const std::string& from, const std::string& to);

/// Deletes a file; NotFound if it does not exist.
Status RemoveFile(const std::string& path);

/// Creates `path` and any missing parents (mkdir -p semantics).
Status MakeDirs(const std::string& path);

/// Names (not paths) of the entries in `path`, excluding "." / "..".
Result<std::vector<std::string>> ListDir(const std::string& path);

/// True if `path` exists (any file type).
bool Exists(const std::string& path);

}  // namespace io
}  // namespace mgbr

#endif  // MGBR_COMMON_IO_FILE_H_
