#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace mgbr {

namespace {

/// True while the current thread is executing a ParallelFor chunk;
/// nested ParallelFor calls detect this and run inline.
thread_local bool t_in_parallel_region = false;

#if MGBR_TELEMETRY
// Pool metrics (cached registry pointers; cold-path lookup happens once
// per process). Wait/run histograms use 1us * 4^k buckets up to ~1000s.
Histogram* PoolWaitHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "pool.queue_wait_us", 1.0, 4.0, 16);
  return h;
}

Histogram* PoolRunHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "pool.task_run_us", 1.0, 4.0, 16);
  return h;
}

Counter* PoolTasksCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("pool.tasks");
  return c;
}

Counter* PoolBusyCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("pool.busy_us");
  return c;
}

Counter* PoolRegionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("pool.parallel_regions");
  return c;
}

Gauge* PoolThreadsGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("pool.num_threads");
  return g;
}
#endif  // MGBR_TELEMETRY

int EnvNumThreads() {
  const char* env = std::getenv("MGBR_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_pool_mu;
int g_num_threads = 0;  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

/// Returns the shared pool, creating it with NumThreads() - 1 workers
/// (the calling thread is the remaining executor). Null when serial.
/// Resolves g_num_threads from the environment on first use and
/// publishes the result to the pool.num_threads gauge. Callers hold
/// g_pool_mu.
void ResolveNumThreadsLocked() {
  if (g_num_threads != 0) return;
  g_num_threads = EnvNumThreads();
#if MGBR_TELEMETRY
  MGBR_GAUGE_SET(PoolThreadsGauge(), static_cast<double>(g_num_threads));
#endif
}

ThreadPool* SharedPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  ResolveNumThreadsLocked();
  if (g_num_threads <= 1) return nullptr;
  if (g_pool == nullptr || g_pool->n_workers() != g_num_threads - 1) {
    g_pool.reset();  // join old workers before spawning new ones
    g_pool = std::make_unique<ThreadPool>(g_num_threads - 1);
  }
  return g_pool.get();
}

/// Shared state of one ParallelFor invocation.
struct ForState {
  int64_t begin = 0;
  int64_t chunk_size = 0;
  int64_t n_chunks = 0;
  int64_t end = 0;
  const std::function<void(int64_t, int64_t, int64_t)>* fn = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<bool> aborted{false};

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t chunks_finished = 0;
  std::exception_ptr first_error;

  /// Claims and runs chunks until none remain (or a chunk failed).
  void RunChunks() {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    while (true) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) break;
      if (!aborted.load(std::memory_order_relaxed)) {
        const int64_t lo = begin + c * chunk_size;
        const int64_t hi = std::min(end, lo + chunk_size);
        try {
          (*fn)(c, lo, hi);
        } catch (...) {
          aborted.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (++chunks_finished == n_chunks) done_cv.notify_all();
    }
    t_in_parallel_region = was_in_region;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int n_workers) {
  MGBR_CHECK_GE(n_workers, 0);
  workers_.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  int64_t enqueue_us = 0;
#if MGBR_TELEMETRY
  if (TelemetryEnabled() || trace::Enabled()) enqueue_us = trace::NowMicros();
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    MGBR_CHECK(!shutdown_);
    queue_.push_back(QueuedTask{std::move(task), enqueue_us});
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
#if MGBR_TELEMETRY
    if (task.enqueue_us != 0) {
      // Telemetry was on at submit time: report queue wait, run the
      // task under a span, and account busy time for utilization
      // (pool.busy_us / (n_workers * wall) in post-processing).
      const int64_t start_us = trace::NowMicros();
      MGBR_HISTOGRAM_OBSERVE(PoolWaitHistogram(),
                             static_cast<double>(start_us - task.enqueue_us));
      {
        MGBR_TRACE_SPAN("pool.task", "pool");
        task.fn();
      }
      const int64_t run_us = trace::NowMicros() - start_us;
      MGBR_HISTOGRAM_OBSERVE(PoolRunHistogram(), static_cast<double>(run_us));
      MGBR_COUNTER_ADD(PoolTasksCounter(), 1);
      MGBR_COUNTER_ADD(PoolBusyCounter(), run_us);
    } else {
      task.fn();
    }
#else
    task.fn();
#endif  // MGBR_TELEMETRY
  }
}

// ---------------------------------------------------------------------------
// Global configuration.
// ---------------------------------------------------------------------------

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  ResolveNumThreadsLocked();
  return g_num_threads;
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_num_threads = std::max(1, n);
  if (g_pool != nullptr && g_pool->n_workers() != g_num_threads - 1) {
    g_pool.reset();
  }
#if MGBR_TELEMETRY
  MGBR_GAUGE_SET(PoolThreadsGauge(), static_cast<double>(g_num_threads));
#endif
}

// ---------------------------------------------------------------------------
// ParallelFor.
// ---------------------------------------------------------------------------

void ParallelForChunked(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  MGBR_CHECK_GE(grain, 1);
  const int64_t n = end - begin;
  if (n <= 0) return;

  // Chunking depends only on (begin, end, grain) so that per-chunk
  // state is reproducible across thread counts.
  const int64_t chunk_size = grain;
  const int64_t n_chunks = (n + chunk_size - 1) / chunk_size;

  ThreadPool* pool = t_in_parallel_region ? nullptr : SharedPool();
  if (pool == nullptr || n_chunks == 1) {
    // Serial fallback: same chunk decomposition, same thread.
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (int64_t c = 0; c < n_chunks; ++c) {
        const int64_t lo = begin + c * chunk_size;
        const int64_t hi = std::min(end, lo + chunk_size);
        fn(c, lo, hi);
      }
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  // Only fan-out regions are traced (serial fallbacks would flood the
  // buffer with zero-information events).
  MGBR_TRACE_SPAN("parallel.for", "pool");
  MGBR_COUNTER_ADD(PoolRegionsCounter(), 1);

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->chunk_size = chunk_size;
  state->n_chunks = n_chunks;
  state->end = end;
  state->fn = &fn;

  // Fan out to at most one helper per remaining chunk; the caller is
  // the (n_workers + 1)-th executor.
  const int64_t helpers =
      std::min<int64_t>(pool->n_workers(), n_chunks - 1);
  for (int64_t i = 0; i < helpers; ++i) {
    pool->Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&] { return state->chunks_finished == n_chunks; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunked(begin, end, grain,
                     [&fn](int64_t, int64_t lo, int64_t hi) { fn(lo, hi); });
}

}  // namespace mgbr
