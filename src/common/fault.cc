#include "common/fault.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace mgbr {
namespace fault {
namespace {

struct ArmedInjection {
  Injection spec;
  int64_t hits = 0;    // matching operations seen so far
  bool fired = false;  // each injection fires at most once
};

// All plan state lives behind one mutex; every hook first checks the
// lock-free g_active flag, so the mutex is only ever taken while a
// fault plan is armed (tests and fault-injection runs).
std::mutex& PlanMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<ArmedInjection>& Plan() {
  static std::vector<ArmedInjection>* plan = new std::vector<ArmedInjection>;
  return *plan;
}

// Every hook checks g_active before taking the mutex, but MGBR_FAULT
// is only parsed lazily behind that check — so the flag must start
// true whenever the variable is set, or the first hook would fast-path
// past the parse and the plan would never arm.
bool EnvHasFaultPlan() {
  const char* env = std::getenv("MGBR_FAULT");
  return env != nullptr && env[0] != '\0';
}

std::atomic<bool> g_active{EnvHasFaultPlan()};
bool g_env_parsed = false;  // guarded by PlanMutex()

Counter* InjectedCounter(Injection::Kind kind) {
  static Counter* kill =
      MetricsRegistry::Global().GetCounter("fault.injected_kill");
  static Counter* eio =
      MetricsRegistry::Global().GetCounter("fault.injected_write_eio");
  static Counter* shrt =
      MetricsRegistry::Global().GetCounter("fault.injected_short_write");
  static Counter* flip =
      MetricsRegistry::Global().GetCounter("fault.injected_bitflip");
  static Counter* reio =
      MetricsRegistry::Global().GetCounter("fault.injected_read_eio");
  static Counter* delay =
      MetricsRegistry::Global().GetCounter("fault.injected_delay");
  switch (kind) {
    case Injection::Kind::kKill:
      return kill;
    case Injection::Kind::kWriteEio:
      return eio;
    case Injection::Kind::kWriteShort:
      return shrt;
    case Injection::Kind::kWriteBitFlip:
      return flip;
    case Injection::Kind::kReadEio:
      return reio;
    case Injection::Kind::kDelay:
      return delay;
  }
  return kill;
}

const char* KindName(Injection::Kind kind) {
  switch (kind) {
    case Injection::Kind::kKill:
      return "kill";
    case Injection::Kind::kWriteEio:
      return "eio";
    case Injection::Kind::kWriteShort:
      return "short";
    case Injection::Kind::kWriteBitFlip:
      return "flip";
    case Injection::Kind::kReadEio:
      return "eio-read";
    case Injection::Kind::kDelay:
      return "delay";
  }
  return "?";
}

// Fault injection is a test/CI facility: every fired injection is
// logged unconditionally (the CI crash-recovery job archives stderr as
// the fault log) and additionally counted when telemetry is on.
void RecordFired(const ArmedInjection& armed, const std::string& target) {
  MGBR_LOG_WARNING("fault: injected ", KindName(armed.spec.kind), "@",
                   armed.spec.match, ":", armed.spec.at, " on '", target,
                   "'");
  MGBR_COUNTER_ADD(InjectedCounter(armed.spec.kind), 1);
}

bool ParseDirective(const std::string& directive, Injection* out) {
  const size_t amp = directive.find('@');
  if (amp == std::string::npos) return false;
  const std::string kind = directive.substr(0, amp);
  std::vector<std::string> parts =
      StrSplit(directive.substr(amp + 1), ':');
  if (parts.size() < 2) return false;
  long long at = 0;
  if (!ParseInt64(parts[1], &at)) return false;
  out->match = parts[0];
  out->at = at;
  out->bit = 0;
  if (kind == "kill") {
    out->kind = Injection::Kind::kKill;
  } else if (kind == "eio") {
    out->kind = Injection::Kind::kWriteEio;
  } else if (kind == "short") {
    out->kind = Injection::Kind::kWriteShort;
  } else if (kind == "flip") {
    out->kind = Injection::Kind::kWriteBitFlip;
    long long bit = 0;
    if (parts.size() < 3 || !ParseInt64(parts[2], &bit)) return false;
    out->bit = bit;
  } else if (kind == "eio-read") {
    out->kind = Injection::Kind::kReadEio;
  } else if (kind == "delay") {
    // delay@<point>:<ms>[:<every>] — parts[1] is the duration, not an
    // occurrence index; the optional parts[2] is the firing period.
    out->kind = Injection::Kind::kDelay;
    out->at = 0;
    out->ms = at;
    if (out->ms < 0) return false;
    out->every = 1;
    if (parts.size() >= 3) {
      long long every = 0;
      if (!ParseInt64(parts[2], &every) || every < 1) return false;
      out->every = every;
    }
  } else {
    return false;
  }
  return out->match.empty() ? false : true;
}

void InstallFromEnvLocked() {
  if (g_env_parsed) return;
  g_env_parsed = true;
  const char* env = std::getenv("MGBR_FAULT");
  if (env == nullptr || env[0] == '\0') return;
  for (const std::string& directive : StrSplit(env, ';')) {
    const std::string trimmed = StrTrim(directive);
    if (trimmed.empty()) continue;
    Injection injection;
    if (!ParseDirective(trimmed, &injection)) {
      MGBR_LOG_WARNING("fault: ignoring malformed MGBR_FAULT directive '",
                       trimmed, "'");
      continue;
    }
    Plan().push_back(ArmedInjection{injection, 0, false});
    MGBR_LOG_WARNING("fault: armed ", KindName(injection.kind), "@",
                     injection.match, ":", injection.at);
  }
  // A variable that parses to zero injections must also drop the flag,
  // or every subsequent hook would keep taking the plan mutex.
  g_active.store(!Plan().empty(), std::memory_order_relaxed);
}

// Finds the armed injection of `kind` whose match hits on this
// operation. Counts a hit on every armed (unfired) injection of the
// kind that matches `target`.
bool Consume(Injection::Kind kind, const std::string& target,
             bool exact_match, ArmedInjection* fired_out) {
  std::lock_guard<std::mutex> lock(PlanMutex());
  InstallFromEnvLocked();
  for (ArmedInjection& armed : Plan()) {
    if (armed.spec.kind != kind || armed.fired) continue;
    const bool matches = exact_match
                             ? target == armed.spec.match
                             : target.find(armed.spec.match) !=
                                   std::string::npos;
    if (!matches) continue;
    if (armed.hits++ == armed.spec.at) {
      armed.fired = true;
      *fired_out = armed;
      return true;
    }
  }
  return false;
}

// Delay variant of Consume: delays fire repeatedly (every `every`-th
// matching operation, starting with the first) and never set `fired`.
// Returns true with a copy of the armed state so the caller can sleep
// and log outside the plan lock.
bool ConsumeDelay(const std::string& target, ArmedInjection* fired_out) {
  std::lock_guard<std::mutex> lock(PlanMutex());
  InstallFromEnvLocked();
  for (ArmedInjection& armed : Plan()) {
    if (armed.spec.kind != Injection::Kind::kDelay) continue;
    if (target != armed.spec.match) continue;
    const int64_t hit = armed.hits++;
    if (hit % armed.spec.every != 0) continue;
    *fired_out = armed;
    return true;
  }
  return false;
}

}  // namespace

bool Active() { return g_active.load(std::memory_order_relaxed); }

void Install(const Injection& injection) {
  std::lock_guard<std::mutex> lock(PlanMutex());
  Plan().push_back(ArmedInjection{injection, 0, false});
  g_active.store(true, std::memory_order_relaxed);
}

void Clear() {
  std::lock_guard<std::mutex> lock(PlanMutex());
  Plan().clear();
  g_env_parsed = true;  // an explicit Clear() also discards MGBR_FAULT
  g_active.store(false, std::memory_order_relaxed);
}

void InstallFromEnv() {
  std::lock_guard<std::mutex> lock(PlanMutex());
  // An explicit call always re-reads the variable (the lazy hook-side
  // path parses at most once per Clear()).
  g_env_parsed = false;
  InstallFromEnvLocked();
}

void KillPoint(const char* name) {
  if (!Active()) return;
  ArmedInjection fired;
  if (!Consume(Injection::Kind::kKill, name, /*exact_match=*/true,
               &fired)) {
    return;
  }
  RecordFired(fired, name);
  // _Exit: no atexit handlers, no stream flushing — the closest
  // userspace approximation of the process dying on the spot.
  std::_Exit(kKillExitCode);
}

bool OnWrite(const std::string& path, WriteFault* out) {
  if (!Active()) return false;
  for (const Injection::Kind kind :
       {Injection::Kind::kWriteEio, Injection::Kind::kWriteShort,
        Injection::Kind::kWriteBitFlip}) {
    ArmedInjection fired;
    if (Consume(kind, path, /*exact_match=*/false, &fired)) {
      RecordFired(fired, path);
      out->kind = kind;
      out->bit = fired.spec.bit;
      return true;
    }
  }
  return false;
}

bool OnRead(const std::string& path) {
  if (!Active()) return false;
  ArmedInjection fired;
  if (!Consume(Injection::Kind::kReadEio, path, /*exact_match=*/false,
               &fired)) {
    return false;
  }
  RecordFired(fired, path);
  return true;
}

void DelayPoint(const char* name) {
  if (!Active()) return;
  ArmedInjection fired;
  if (!ConsumeDelay(name, &fired)) return;
  RecordFired(fired, name);
  // Sleep outside the plan lock: a long stall at one delay point must
  // not serialize every other fault hook in the process behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(fired.spec.ms));
}

}  // namespace fault
}  // namespace mgbr
