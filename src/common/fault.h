#ifndef MGBR_COMMON_FAULT_H_
#define MGBR_COMMON_FAULT_H_

#include <cstdint>
#include <string>

namespace mgbr {
namespace fault {

/// Deterministic fault injection for crash-recovery testing.
///
/// A small set of *injections* is installed either programmatically
/// (tests) or from the MGBR_FAULT environment variable (CI, CLI runs).
/// Each injection names a match target and an occurrence index and
/// fires exactly once, on the `at`-th matching operation:
///
///   * kKill         — process exit (_Exit(kKillExitCode)) at a named
///                     kill point (fault::KillPoint in the code).
///   * kWriteEio     — the matching io::File::Write returns an IoError
///                     without writing (a full, reported I/O failure).
///   * kWriteShort   — the matching write persists only the first half
///                     of the payload but REPORTS SUCCESS (a torn write
///                     that only checksums can catch).
///   * kWriteBitFlip — the matching write flips one bit of the payload
///                     and reports success (silent media corruption).
///   * kReadEio      — the matching io::File read returns an IoError.
///   * kDelay        — the matching delay point sleeps `ms`
///                     milliseconds. Unlike the other kinds a delay
///                     fires REPEATEDLY: on every `every`-th matching
///                     operation (starting with the first), so a single
///                     directive can wedge a scoring loop long enough
///                     for the serving watchdog to notice.
///
/// For write/read kinds, `match` is a substring of the file path; for
/// kKill and kDelay it is the exact point name. Matching operations are
/// counted per injection across the whole process, so `at = 2` on a
/// checkpoint path fires on the third checkpoint write of the run.
///
/// MGBR_FAULT grammar (';'-separated directives, parsed on first use):
///
///   kill@<point>:<at>
///   eio@<path-substr>:<at>
///   short@<path-substr>:<at>
///   flip@<path-substr>:<at>:<bit>
///   eio-read@<path-substr>:<at>
///   delay@<point>:<ms>[:<every>]
///
/// e.g. MGBR_FAULT="kill@trainer.step:40;flip@ckpt:0:13". Every fired
/// injection is logged at WARNING level and counted in the metrics
/// registry (fault.injected_*), so CI can archive the fault log.
///
/// When no injection is installed, Active() is a single relaxed atomic
/// load and every hook is a no-op — hot paths (one KillPoint per
/// trainer step) pay nothing in production.
struct Injection {
  enum class Kind {
    kKill,
    kWriteEio,
    kWriteShort,
    kWriteBitFlip,
    kReadEio,
    kDelay,
  };
  Kind kind = Kind::kKill;
  /// Point name (kKill/kDelay, exact) or file-path substring (io
  /// kinds).
  std::string match;
  /// Fires on the `at`-th matching operation, 0-based (fire-once kinds).
  int64_t at = 0;
  /// kWriteBitFlip only: bit index into the payload (mod payload bits).
  int64_t bit = 0;
  /// kDelay only: sleep duration in milliseconds.
  int64_t ms = 0;
  /// kDelay only: fire on every `every`-th matching operation (>= 1).
  int64_t every = 1;
};

/// Exit code used by injected kills (mirrors a SIGKILLed process).
inline constexpr int kKillExitCode = 137;

/// True when at least one injection is armed. One relaxed load.
bool Active();

/// Installs one injection (appends to the active plan).
void Install(const Injection& injection);

/// Removes every installed injection and resets hit counters.
void Clear();

/// Parses MGBR_FAULT and installs its directives. Called lazily by the
/// first hook that runs, so binaries need no explicit setup; calling it
/// again is a no-op unless Clear() ran in between. Malformed directives
/// are logged and skipped.
void InstallFromEnv();

/// Kill point: if a kKill injection matches `name` and its occurrence
/// count is reached, logs, counts, and _Exit(kKillExitCode)s. The
/// checkpoint writer and the trainer step loop call this at the places
/// the crash-recovery contract must survive.
void KillPoint(const char* name);

/// Outcome of consulting the plan for one io::File write.
struct WriteFault {
  Injection::Kind kind = Injection::Kind::kWriteEio;
  int64_t bit = 0;
};

/// Returns true and fills `*out` when a write fault fires for this
/// operation on `path`. Called by io::File::Write.
bool OnWrite(const std::string& path, WriteFault* out);

/// Returns true when a read fault (injected EIO) fires for this
/// operation on `path`. Called by io::File reads.
bool OnRead(const std::string& path);

/// Delay point: if a kDelay injection matches `name` (exact) and this
/// is one of its firing occurrences, sleeps the injected duration. The
/// sleep happens OUTSIDE the plan lock so a wedged delay point never
/// blocks other hooks. Serving calls this on the score path
/// ("serve.score") and the checkpoint load path ("pool.load").
void DelayPoint(const char* name);

}  // namespace fault
}  // namespace mgbr

#endif  // MGBR_COMMON_FAULT_H_
