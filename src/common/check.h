#ifndef MGBR_COMMON_CHECK_H_
#define MGBR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace mgbr::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& detail) {
  std::fprintf(stderr, "MGBR_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               detail.c_str());
  std::abort();
}

}  // namespace mgbr::internal

/// Aborts when `cond` is false. Use for programmer invariants only —
/// recoverable failures must go through Status/Result.
#define MGBR_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::mgbr::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                \
  } while (false)

/// MGBR_CHECK with a formatted detail message (StrCat-style varargs).
#define MGBR_CHECK_MSG(cond, ...)                           \
  do {                                                      \
    if (!(cond)) {                                          \
      ::mgbr::internal::CheckFailed(__FILE__, __LINE__, #cond, \
                                    ::mgbr::StrCat(__VA_ARGS__)); \
    }                                                       \
  } while (false)

#define MGBR_CHECK_EQ(a, b) \
  MGBR_CHECK_MSG((a) == (b), "(", (a), " vs ", (b), ")")
#define MGBR_CHECK_NE(a, b) \
  MGBR_CHECK_MSG((a) != (b), "(", (a), " vs ", (b), ")")
#define MGBR_CHECK_LT(a, b) \
  MGBR_CHECK_MSG((a) < (b), "(", (a), " vs ", (b), ")")
#define MGBR_CHECK_LE(a, b) \
  MGBR_CHECK_MSG((a) <= (b), "(", (a), " vs ", (b), ")")
#define MGBR_CHECK_GT(a, b) \
  MGBR_CHECK_MSG((a) > (b), "(", (a), " vs ", (b), ")")
#define MGBR_CHECK_GE(a, b) \
  MGBR_CHECK_MSG((a) >= (b), "(", (a), " vs ", (b), ")")

#ifdef NDEBUG
#define MGBR_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define MGBR_DCHECK(cond) MGBR_CHECK(cond)
#endif

#endif  // MGBR_COMMON_CHECK_H_
