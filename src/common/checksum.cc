#include "common/checksum.h"

#include <array>

namespace mgbr {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace mgbr
