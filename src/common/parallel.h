#ifndef MGBR_COMMON_PARALLEL_H_
#define MGBR_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mgbr {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
///
/// The pool is the execution substrate behind `ParallelFor`; most code
/// should use that instead of submitting raw tasks. Tasks must not
/// throw — `ParallelFor` wraps user bodies and routes exceptions back
/// to the caller; raw `Submit` callables are executed as-is.
///
/// The destructor drains nothing: it wakes all workers, waits for
/// in-flight tasks to finish, and joins. A pool can be created and
/// destroyed repeatedly (see parallel_test.cc: shutdown/reuse).
class ThreadPool {
 public:
  /// Spawns `n_workers` threads (>= 0; 0 is a valid, inert pool).
  explicit ThreadPool(int n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int n_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

 private:
  /// Queued task plus its enqueue timestamp (trace::NowMicros; 0 when
  /// telemetry was off at submit time). Workers use it to report
  /// queue-wait vs run-time histograms and per-thread utilization.
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_us = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// Number of threads compute kernels use. Resolution order:
///   1. the last `SetNumThreads` call,
///   2. the `MGBR_NUM_THREADS` environment variable (read once),
///   3. `std::thread::hardware_concurrency()`.
/// Always >= 1; 1 means fully serial (no pool is ever created).
int NumThreads();

/// Overrides the global thread count (clamped to >= 1). Existing pool
/// workers are torn down and respawned lazily on the next parallel
/// call. Not safe to call concurrently with running parallel regions.
void SetNumThreads(int n);

/// Scoped thread-count override for tests and benchmarks.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : saved_(NumThreads()) {
    SetNumThreads(n);
  }
  ~ScopedNumThreads() { SetNumThreads(saved_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

/// Runs `fn(chunk_begin, chunk_end)` over a partition of [begin, end).
///
/// Chunks are contiguous, disjoint, at least `grain` long (except the
/// last) and processed by the shared pool plus the calling thread.
/// Because every index is owned by exactly one chunk and the body runs
/// sequentially within a chunk, a kernel whose chunks write disjoint
/// outputs produces bit-identical results for every thread count.
///
/// Serial fallback — `fn(begin, end)` on the calling thread — when
/// `NumThreads() == 1`, when the range is at most `grain`, or when
/// called from inside another ParallelFor body (nested calls do not
/// deadlock; they just run inline).
///
/// If any chunk throws, the first exception is captured, remaining
/// unstarted chunks are skipped, and the exception is rethrown on the
/// calling thread after all in-flight chunks finish.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Like ParallelFor but also hands the body its chunk index:
/// `fn(chunk, chunk_begin, chunk_end)`. Chunking is a pure function of
/// (begin, end, grain) — never of the thread count — so per-chunk
/// state (e.g. an Rng stream seeded by `chunk`; see sampler.cc) gives
/// results that are bit-identical for every thread count.
void ParallelForChunked(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn);

}  // namespace mgbr

#endif  // MGBR_COMMON_PARALLEL_H_
