#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace mgbr {

namespace {

std::atomic<bool> g_telemetry_enabled{[] {
  const char* env = std::getenv("MGBR_TELEMETRY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

}  // namespace

bool TelemetryEnabled() {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

void SetTelemetryEnabled(bool enabled) {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

Histogram::Histogram(std::string name, double first_bound, double growth,
                     int n_buckets)
    : name_(std::move(name)),
      buckets_(static_cast<size_t>(n_buckets) + 1) {
  MGBR_CHECK_GT(first_bound, 0.0);
  MGBR_CHECK_GT(growth, 1.0);
  MGBR_CHECK_GE(n_buckets, 1);
  bounds_.reserve(static_cast<size_t>(n_buckets));
  double b = first_bound;
  for (int k = 0; k < n_buckets; ++k) {
    bounds_.push_back(b);
    b *= growth;
  }
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  // Exponential bounds: the bucket index is logarithmic in the value,
  // but a linear scan over <= ~24 bounds is cheaper than log() here and
  // branch-predicts well (most observations land in a few buckets).
  size_t k = 0;
  while (k < bounds_.size() && value > bounds_[k]) ++k;
  buckets_[k].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    const int64_t before = seen;
    seen += counts[k];
    if (static_cast<double>(seen) >= target) {
      // Linear interpolation between the containing bucket's bounds,
      // assuming observations are uniform within the bucket. The
      // overflow bucket has no upper bound; report the largest finite
      // bound (a known floor) rather than extrapolating.
      if (k >= bounds_.size()) return bounds_.back();
      const double lower = k == 0 ? 0.0 : bounds_[k - 1];
      const double upper = bounds_[k];
      const double frac = (target - static_cast<double>(before)) /
                          static_cast<double>(counts[k]);
      return lower + frac * (upper - lower);
    }
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         double first_bound, double growth,
                                         int n_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(name, first_bound, growth, n_buckets);
  }
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    internal::AppendJsonString(name, &out);
    out += ':';
    out += std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    internal::AppendJsonString(name, &out);
    out += ':';
    internal::AppendJsonNumber(g->Value(), &out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    internal::AppendJsonString(name, &out);
    out += ":{\"count\":";
    out += std::to_string(h->Count());
    out += ",\"sum\":";
    internal::AppendJsonNumber(h->Sum(), &out);
    out += ",\"mean\":";
    internal::AppendJsonNumber(h->Mean(), &out);
    out += ",\"p50\":";
    internal::AppendJsonNumber(h->Quantile(0.5), &out);
    out += ",\"p95\":";
    internal::AppendJsonNumber(h->Quantile(0.95), &out);
    out += ",\"p99\":";
    internal::AppendJsonNumber(h->Quantile(0.99), &out);
    out += '}';
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.bounds = h->bounds();
    data.buckets = h->BucketCounts();
    data.count = h->Count();
    data.sum = h->Sum();
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics output: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  return ok ? Status::OK()
            : Status::IoError("short write to metrics output: " + path);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

// ---------------------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------------------

namespace internal {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

}  // namespace internal

}  // namespace mgbr
