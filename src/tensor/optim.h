#ifndef MGBR_TENSOR_OPTIM_H_
#define MGBR_TENSOR_OPTIM_H_

#include <vector>

#include "common/status.h"
#include "tensor/variable.h"

namespace mgbr {

/// Base class for gradient-descent optimizers over a fixed parameter
/// list. Typical loop:
///
///   optimizer.ZeroGrad();
///   loss.Backward();
///   optimizer.Step();
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Zeroes the gradient of every registered parameter.
  void ZeroGrad();

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  const std::vector<Var>& params() const { return params_; }
  std::vector<Var>& params_mutable() { return params_; }

 protected:
  std::vector<Var> params_;
};

/// Scales all gradients so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm. No-op if max_norm <= 0.
double ClipGradNorm(std::vector<Var>& params, double max_norm);

/// Plain SGD: p -= lr * grad.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr);
  void Step() override;

 private:
  float lr_;
};

/// Adam with bias correction (Kingma & Ba, 2015) — the optimizer the
/// paper trains MGBR with. Optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

  /// Current learning rate (schedules adjust it between steps).
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// Checkpoint access: bias-correction step count and the per-param
  /// first/second moment estimates, in Parameters() order.
  int64_t step_count() const { return t_; }
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }

  /// Restores optimizer state captured from an identical parameter
  /// list: `m`/`v` must have one tensor per parameter with matching
  /// shapes, `t` must be >= 0. On any mismatch the optimizer is left
  /// unchanged and an InvalidArgument Status is returned.
  Status RestoreState(int64_t t, float lr, std::vector<Tensor> m,
                      std::vector<Tensor> v);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace mgbr

#endif  // MGBR_TENSOR_OPTIM_H_
