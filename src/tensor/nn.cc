#include "tensor/nn.h"

#include "tensor/init.h"

namespace mgbr {

Var ApplyActivation(const Var& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
  }
  return x;
}

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool with_bias)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(XavierInit(in_dim, out_dim, rng), /*requires_grad=*/true) {
  if (with_bias) {
    bias_ = Var(Tensor::Zeros(1, out_dim), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  MGBR_CHECK_EQ(x.cols(), in_dim_);
  Var y = MatMul(x, weight_);
  if (bias_.defined()) y = AddRowBroadcast(y, bias_);
  return y;
}

std::vector<Var> Linear::Parameters() const {
  std::vector<Var> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng, Activation hidden_act,
         Activation output_act)
    : hidden_act_(hidden_act), output_act_(output_act) {
  MGBR_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    const bool last = (i + 1 == layers_.size());
    h = ApplyActivation(h, last ? output_act_ : hidden_act_);
  }
  return h;
}

std::vector<Var> Mlp::Parameters() const {
  std::vector<Var> out;
  for (const Linear& layer : layers_) {
    for (Var& p : layer.Parameters()) out.push_back(std::move(p));
  }
  return out;
}

int64_t Mlp::ParameterCount() const { return CountParameters(Parameters()); }

int64_t CountParameters(const std::vector<Var>& params) {
  int64_t total = 0;
  for (const Var& p : params) total += p.value().numel();
  return total;
}

}  // namespace mgbr
