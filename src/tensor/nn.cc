#include "tensor/nn.h"

#include <algorithm>

#include "common/parallel.h"
#include "tensor/init.h"
#include "tensor/kernels.h"

namespace mgbr {

namespace {

using internal::MakeOpVar;
using internal::VarNode;

kernels::Act ToKernelAct(Activation act) {
  switch (act) {
    case Activation::kNone:
      return kernels::Act::kNone;
    case Activation::kRelu:
      return kernels::Act::kRelu;
    case Activation::kSigmoid:
      return kernels::Act::kSigmoid;
    case Activation::kTanh:
      return kernels::Act::kTanh;
  }
  return kernels::Act::kNone;
}

// Rows per parallel chunk for the fused epilogue (same budget as the
// elementwise grain in tensor.cc).
int64_t FuseRowGrain(int64_t cols) {
  return std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(1, cols));
}

}  // namespace

Var ApplyActivation(const Var& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
  }
  return x;
}

Var BiasAct(const Var& x, const Var& bias, Activation act) {
  MGBR_CHECK_EQ(bias.rows(), 1);
  MGBR_CHECK_EQ(bias.cols(), x.cols());
  const int64_t rows = x.rows(), cols = x.cols();
  const kernels::Act kact = ToKernelAct(act);
  Tensor out(rows, cols);
  const float* xp = x.value().data();
  const float* bp = bias.value().data();
  float* yp = out.data();
  ParallelFor(0, rows, FuseRowGrain(cols), [=](int64_t lo, int64_t hi) {
    kernels::BiasActForward(kact, xp + lo * cols, bp, yp + lo * cols,
                            hi - lo, cols);
  });
  return MakeOpVar(std::move(out), {x, bias}, [kact](VarNode& n) {
    const int64_t rows = n.grad.rows(), cols = n.grad.cols();
    // d = g ⊙ act'(y); act' is expressible in y for every supported
    // activation, so the input x is not retained.
    Tensor d = n.grad;
    float* dp = d.data();
    const float* yp = n.value.data();
    ParallelFor(0, rows, FuseRowGrain(cols), [=](int64_t lo, int64_t hi) {
      kernels::ActGradInPlace(kact, dp + lo * cols, yp + lo * cols,
                              (hi - lo) * cols);
    });
    if (n.parents[0]->requires_grad) {
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
    if (n.parents[1]->requires_grad) {
      Tensor db(1, cols);
      float* dbp = db.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float* drow = dp + r * cols;
        for (int64_t c = 0; c < cols; ++c) dbp[c] += drow[c];
      }
      n.parents[1]->EnsureGrad().AccumulateInPlace(db);
    }
  });
}

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool with_bias)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(XavierInit(in_dim, out_dim, rng), /*requires_grad=*/true) {
  if (with_bias) {
    bias_ = Var(Tensor::Zeros(1, out_dim), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  MGBR_CHECK_EQ(x.cols(), in_dim_);
  Var y = MatMul(x, weight_);
  if (bias_.defined()) y = AddRowBroadcast(y, bias_);
  return y;
}

Var Linear::ForwardAct(const Var& x, Activation act) const {
  MGBR_CHECK_EQ(x.cols(), in_dim_);
  Var y = MatMul(x, weight_);
  if (bias_.defined()) return BiasAct(y, bias_, act);
  return ApplyActivation(y, act);
}

std::vector<Var> Linear::Parameters() const {
  std::vector<Var> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng, Activation hidden_act,
         Activation output_act)
    : hidden_act_(hidden_act), output_act_(output_act) {
  MGBR_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = (i + 1 == layers_.size());
    h = layers_[i].ForwardAct(h, last ? output_act_ : hidden_act_);
  }
  return h;
}

std::vector<Var> Mlp::Parameters() const {
  std::vector<Var> out;
  for (const Linear& layer : layers_) {
    for (Var& p : layer.Parameters()) out.push_back(std::move(p));
  }
  return out;
}

int64_t Mlp::ParameterCount() const { return CountParameters(Parameters()); }

int64_t CountParameters(const std::vector<Var>& params) {
  int64_t total = 0;
  for (const Var& p : params) total += p.value().numel();
  return total;
}

}  // namespace mgbr
