#ifndef MGBR_TENSOR_TENSOR_H_
#define MGBR_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "tensor/arena.h"

namespace mgbr {

/// Dense row-major matrix of float32.
///
/// Every value in the engine is a 2-D tensor: scalars are 1x1, row
/// vectors are 1xN, column vectors are Nx1. Keeping a single rank
/// removes a whole class of broadcasting ambiguities; the few
/// broadcast forms the models need are explicit ops (see ops.h).
///
/// Tensors own their storage and have value semantics: copying a
/// Tensor copies the buffer. Buffers come from the process-wide
/// TensorArena (arena.h), which recycles them across tape nodes and
/// training steps; every acquired buffer is zero-filled or fully
/// overwritten, so recycling never changes a computed value. The
/// autograd layer shares tensors through Var, not through Tensor
/// aliasing.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-initialized tensor of the given shape.
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(TensorArena::Global().Acquire(rows * cols)) {
    MGBR_CHECK_GE(rows, 0);
    MGBR_CHECK_GE(cols, 0);
  }

  ~Tensor() {
    if (data_.capacity() != 0) {
      TensorArena::Global().Release(std::move(data_));
    }
  }

  Tensor(const Tensor& other)
      : rows_(other.rows_), cols_(other.cols_),
        data_(TensorArena::Global().AcquireCopy(other.data_.data(),
                                                other.numel())) {}

  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      TensorArena::Global().Release(std::move(data_));
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = TensorArena::Global().AcquireCopy(other.data_.data(),
                                                other.numel());
    }
    return *this;
  }

  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_),
        data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = std::vector<float>();
  }

  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      TensorArena::Global().Release(std::move(data_));
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = std::move(other.data_);
      other.rows_ = 0;
      other.cols_ = 0;
      other.data_ = std::vector<float>();
    }
    return *this;
  }

  /// All-zero tensor.
  static Tensor Zeros(int64_t rows, int64_t cols) {
    return Tensor(rows, cols);
  }

  /// Tensor filled with `value`.
  static Tensor Full(int64_t rows, int64_t cols, float value);

  /// 1x1 scalar tensor.
  static Tensor Scalar(float value);

  /// Builds a rows x cols tensor from a flat row-major vector.
  static Tensor FromVector(int64_t rows, int64_t cols,
                           const std::vector<float>& values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    MGBR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    MGBR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Value of a 1x1 tensor.
  float item() const {
    MGBR_CHECK_EQ(numel(), 1);
    return data_[0];
  }

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Element-wise in-place accumulate: this += other. Shapes must match.
  void AccumulateInPlace(const Tensor& other);

  /// In-place scale: this *= s.
  void ScaleInPlace(float s);

  /// Sum of all elements (double accumulator).
  double Sum() const;

  /// Frobenius norm.
  double Norm() const;

  /// Largest absolute element (0 for empty tensors).
  double AbsMax() const;

  /// "Tensor(2x3)[...]" preview for debugging; shows at most 8 values.
  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

/// True if all elements differ by at most `atol`.
bool AllClose(const Tensor& a, const Tensor& b, double atol = 1e-5);

}  // namespace mgbr

#endif  // MGBR_TENSOR_TENSOR_H_
