#ifndef MGBR_TENSOR_TENSOR_H_
#define MGBR_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace mgbr {

/// Dense row-major matrix of float32.
///
/// Every value in the engine is a 2-D tensor: scalars are 1x1, row
/// vectors are 1xN, column vectors are Nx1. Keeping a single rank
/// removes a whole class of broadcasting ambiguities; the few
/// broadcast forms the models need are explicit ops (see ops.h).
///
/// Tensors own their storage (std::vector<float>) and have value
/// semantics: copying a Tensor copies the buffer. At the scale this
/// library targets (experiment-sized recommender models) this is the
/// simplest correct choice; the autograd layer shares tensors through
/// Var, not through Tensor aliasing.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Uninitialized-to-zero tensor of the given shape.
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {
    MGBR_CHECK_GE(rows, 0);
    MGBR_CHECK_GE(cols, 0);
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// All-zero tensor.
  static Tensor Zeros(int64_t rows, int64_t cols) {
    return Tensor(rows, cols);
  }

  /// Tensor filled with `value`.
  static Tensor Full(int64_t rows, int64_t cols, float value);

  /// 1x1 scalar tensor.
  static Tensor Scalar(float value);

  /// Builds a rows x cols tensor from a flat row-major vector.
  static Tensor FromVector(int64_t rows, int64_t cols,
                           const std::vector<float>& values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    MGBR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    MGBR_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Value of a 1x1 tensor.
  float item() const {
    MGBR_CHECK_EQ(numel(), 1);
    return data_[0];
  }

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Element-wise in-place accumulate: this += other. Shapes must match.
  void AccumulateInPlace(const Tensor& other);

  /// In-place scale: this *= s.
  void ScaleInPlace(float s);

  /// Sum of all elements (double accumulator).
  double Sum() const;

  /// Frobenius norm.
  double Norm() const;

  /// Largest absolute element (0 for empty tensors).
  double AbsMax() const;

  /// "Tensor(2x3)[...]" preview for debugging; shows at most 8 values.
  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

/// True if all elements differ by at most `atol`.
bool AllClose(const Tensor& a, const Tensor& b, double atol = 1e-5);

}  // namespace mgbr

#endif  // MGBR_TENSOR_TENSOR_H_
