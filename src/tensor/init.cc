#include "tensor/init.h"

#include <cmath>

namespace mgbr {

Tensor GaussianInit(int64_t rows, int64_t cols, Rng* rng, float mean,
                    float stddev) {
  MGBR_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

Tensor XavierInit(int64_t rows, int64_t cols, Rng* rng) {
  MGBR_CHECK(rng != nullptr);
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return UniformInit(rows, cols, rng, -a, a);
}

Tensor UniformInit(int64_t rows, int64_t cols, Rng* rng, float lo, float hi) {
  MGBR_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

}  // namespace mgbr
