#include "tensor/variable.h"

#include <unordered_set>

namespace mgbr {

namespace {
/// Per-thread no-grad depth flag; see NoGradScope in variable.h.
thread_local bool t_no_grad_active = false;
}  // namespace

NoGradScope::NoGradScope() : prev_(t_no_grad_active) {
  t_no_grad_active = true;
}

NoGradScope::~NoGradScope() { t_no_grad_active = prev_; }

bool NoGradScope::Active() { return t_no_grad_active; }

namespace internal {

Tensor& VarNode::EnsureGrad() {
  if (!grad_allocated) {
    grad = Tensor::Zeros(value.rows(), value.cols());
    grad_allocated = true;
  }
  return grad;
}

Var MakeOpVar(Tensor value, std::vector<Var> parents,
              std::function<void(VarNode&)> backward) {
  bool needs = false;
  for (const Var& p : parents) {
    MGBR_CHECK(p.defined());
    needs = needs || p.requires_grad();
  }
  // Inside a NoGradScope the op result is a detached value: the tape
  // (parents + backward closure) is never materialized. The forward
  // Tensor was already computed by the caller with the same kernels as
  // the tape path, so values are unaffected.
  if (NoGradScope::Active()) needs = false;
  Var out(std::move(value), needs);
  if (needs) {
    auto& node = *out.node();
    node.parents.reserve(parents.size());
    for (Var& p : parents) node.parents.push_back(p.node());
    node.backward = std::move(backward);
  }
  return out;
}

}  // namespace internal

Var::Var(Tensor value, bool requires_grad)
    : node_(std::make_shared<internal::VarNode>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  MGBR_CHECK(defined());
  return node_->value;
}

Tensor& Var::mutable_value() {
  MGBR_CHECK(defined());
  return node_->value;
}

const Tensor& Var::grad() const {
  MGBR_CHECK(defined());
  return node_->EnsureGrad();
}

bool Var::requires_grad() const {
  MGBR_CHECK(defined());
  return node_->requires_grad;
}

void Var::ZeroGrad() {
  MGBR_CHECK(defined());
  node_->EnsureGrad().Fill(0.0f);
}

void Var::Backward() const {
  MGBR_CHECK(defined());
  MGBR_CHECK_MSG(value().numel() == 1,
                 "Backward() requires a scalar output, got shape ",
                 value().rows(), "x", value().cols());
  if (!node_->requires_grad) return;

  // Iterative post-order DFS to get a reverse topological order.
  std::vector<internal::VarNode*> order;
  std::unordered_set<internal::VarNode*> visited;
  struct Frame {
    internal::VarNode* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child < top.node->parents.size()) {
      internal::VarNode* child = top.node->parents[top.next_child++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad().Fill(1.0f);
  // order is post-order (children first); walk from the output backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarNode* n = *it;
    if (n->backward) n->backward(*n);
  }
}

}  // namespace mgbr
