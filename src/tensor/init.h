#ifndef MGBR_TENSOR_INIT_H_
#define MGBR_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mgbr {

/// Tensor with i.i.d. N(mean, stddev^2) entries. The paper initializes
/// the layer-0 GCN embeddings from a standard Gaussian.
Tensor GaussianInit(int64_t rows, int64_t cols, Rng* rng, float mean = 0.0f,
                    float stddev = 1.0f);

/// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
/// Used for all trainable weight matrices.
Tensor XavierInit(int64_t rows, int64_t cols, Rng* rng);

/// Uniform init in [lo, hi).
Tensor UniformInit(int64_t rows, int64_t cols, Rng* rng, float lo, float hi);

}  // namespace mgbr

#endif  // MGBR_TENSOR_INIT_H_
