#ifndef MGBR_TENSOR_NN_H_
#define MGBR_TENSOR_NN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/variable.h"

namespace mgbr {

/// Activation applied after a Linear layer inside an Mlp.
enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Applies `act` to `x`.
Var ApplyActivation(const Var& x, Activation act);

/// Fused y = act(x + bias) as a single tape node. `bias` is a 1 x cols
/// row broadcast over the batch. Equivalent to
/// ApplyActivation(AddRowBroadcast(x, bias), act) but touches x once in
/// the forward and allocates one intermediate fewer on the tape; the
/// backward reuses y (all supported activations have y-expressible
/// derivatives). Runs on the vectorized kernel layer (tensor/kernels.h).
Var BiasAct(const Var& x, const Var& bias, Activation act);

/// Fully-connected layer: y = x @ W + b (bias optional).
///
/// W is (in x out) so inputs are row-major batches (B x in).
class Linear {
 public:
  /// Xavier-initializes W (and zero-initializes b when `with_bias`).
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool with_bias = true);

  /// Forward pass for a (B x in) batch.
  Var Forward(const Var& x) const;

  /// Forward pass with a fused bias + activation epilogue (one tape
  /// node for act(x @ W + b) past the matmul).
  Var ForwardAct(const Var& x, Activation act) const;

  /// Trainable parameters (W, then b when present).
  std::vector<Var> Parameters() const;

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Var weight_;
  Var bias_;  // undefined when constructed without bias
};

/// Multi-layer perceptron: Linear layers with an activation between
/// them (and optionally after the last layer).
class Mlp {
 public:
  /// `dims` is the full layer spec, e.g. {64, 32, 1}: two Linear layers
  /// 64->32->1. `hidden_act` is applied after every layer except the
  /// last; `output_act` after the last.
  Mlp(const std::vector<int64_t>& dims, Rng* rng,
      Activation hidden_act = Activation::kRelu,
      Activation output_act = Activation::kNone);

  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

 private:
  std::vector<Linear> layers_;
  Activation hidden_act_;
  Activation output_act_;
};

/// Counts scalars across a parameter list.
int64_t CountParameters(const std::vector<Var>& params);

}  // namespace mgbr

#endif  // MGBR_TENSOR_NN_H_
