#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "tensor/kernels.h"

namespace mgbr {

using internal::MakeOpVar;
using internal::VarNode;

namespace {

/// Minimum scalar operations per ParallelFor chunk; below this the
/// fork/join overhead dominates and the kernels run serially.
constexpr int64_t kElemGrain = 1 << 14;

/// Row grain sized so one chunk covers roughly kElemGrain scalar ops.
inline int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1,
                           kElemGrain / std::max<int64_t>(1, work_per_row));
}

/// GEMM chunks are floored at two register tiles (8 rows) so the
/// kernel's 4-row micro-tile never degenerates into single-row panels
/// on large matrices. Chunk boundaries only partition C row ownership,
/// so the grain has no effect on numerics.
inline int64_t GemmRowGrain(int64_t work_per_row) {
  return std::max<int64_t>(8, RowGrain(work_per_row));
}

/// Accumulates `delta` into `parent`'s grad if the parent needs one.
inline void Accumulate(const std::shared_ptr<VarNode>& parent,
                       const Tensor& delta) {
  if (parent->requires_grad) parent->EnsureGrad().AccumulateInPlace(delta);
}

inline float StableSoftplus(float x) {
  // log(1 + e^x) = max(x, 0) + log1p(exp(-|x|))
  float m = x > 0.0f ? x : 0.0f;
  return m + std::log1p(std::exp(-std::fabs(x)));
}

inline float StableSigmoid(float x) {
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise binary.
// ---------------------------------------------------------------------------

Var Add(const Var& a, const Var& b) {
  MGBR_CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  out.AccumulateInPlace(b.value());
  return MakeOpVar(std::move(out), {a, b}, [](VarNode& n) {
    Accumulate(n.parents[0], n.grad);
    Accumulate(n.parents[1], n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  MGBR_CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  const float* bp = b.value().data();
  float* op = out.data();
  ParallelFor(0, out.numel(), kElemGrain, [op, bp](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] -= bp[i];
  });
  return MakeOpVar(std::move(out), {a, b}, [](VarNode& n) {
    Accumulate(n.parents[0], n.grad);
    if (n.parents[1]->requires_grad) {
      Tensor neg = n.grad;
      neg.ScaleInPlace(-1.0f);
      n.parents[1]->EnsureGrad().AccumulateInPlace(neg);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  MGBR_CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  const float* bp = b.value().data();
  float* op = out.data();
  ParallelFor(0, out.numel(), kElemGrain, [op, bp](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] *= bp[i];
  });
  return MakeOpVar(std::move(out), {a, b}, [](VarNode& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    if (n.parents[0]->requires_grad) {
      Tensor d = n.grad;
      float* dp = d.data();
      const float* bp2 = bv.data();
      ParallelFor(0, d.numel(), kElemGrain, [dp, bp2](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dp[i] *= bp2[i];
      });
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
    if (n.parents[1]->requires_grad) {
      Tensor d = n.grad;
      float* dp = d.data();
      const float* ap = av.data();
      ParallelFor(0, d.numel(), kElemGrain, [dp, ap](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dp[i] *= ap[i];
      });
      n.parents[1]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

Var Div(const Var& a, const Var& b) {
  MGBR_CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  const float* bp = b.value().data();
  float* op = out.data();
  ParallelFor(0, out.numel(), kElemGrain, [op, bp](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] /= bp[i];
  });
  return MakeOpVar(std::move(out), {a, b}, [](VarNode& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    if (n.parents[0]->requires_grad) {
      Tensor d = n.grad;
      float* dp = d.data();
      const float* bp2 = bv.data();
      for (int64_t i = 0; i < d.numel(); ++i) dp[i] /= bp2[i];
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
    if (n.parents[1]->requires_grad) {
      Tensor d = n.grad;
      float* dp = d.data();
      const float* ap = av.data();
      const float* bp2 = bv.data();
      for (int64_t i = 0; i < d.numel(); ++i) {
        dp[i] *= -ap[i] / (bp2[i] * bp2[i]);
      }
      n.parents[1]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

// ---------------------------------------------------------------------------
// Scalar ops.
// ---------------------------------------------------------------------------

Var AddScalar(const Var& a, float s) {
  Tensor out = a.value();
  float* op = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) op[i] += s;
  return MakeOpVar(std::move(out), {a}, [](VarNode& n) {
    Accumulate(n.parents[0], n.grad);
  });
}

Var MulScalar(const Var& a, float s) {
  Tensor out = a.value();
  out.ScaleInPlace(s);
  return MakeOpVar(std::move(out), {a}, [s](VarNode& n) {
    if (n.parents[0]->requires_grad) {
      Tensor d = n.grad;
      d.ScaleInPlace(s);
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

// ---------------------------------------------------------------------------
// Broadcast ops.
// ---------------------------------------------------------------------------

Var AddRowBroadcast(const Var& a, const Var& row) {
  MGBR_CHECK_EQ(row.rows(), 1);
  MGBR_CHECK_EQ(row.cols(), a.cols());
  Tensor out = a.value();
  const float* rp = row.value().data();
  for (int64_t r = 0; r < out.rows(); ++r) {
    float* op = out.data() + r * out.cols();
    for (int64_t c = 0; c < out.cols(); ++c) op[c] += rp[c];
  }
  return MakeOpVar(std::move(out), {a, row}, [](VarNode& n) {
    Accumulate(n.parents[0], n.grad);
    if (n.parents[1]->requires_grad) {
      Tensor d(1, n.grad.cols());
      for (int64_t r = 0; r < n.grad.rows(); ++r) {
        const float* gp = n.grad.data() + r * n.grad.cols();
        float* dp = d.data();
        for (int64_t c = 0; c < n.grad.cols(); ++c) dp[c] += gp[c];
      }
      n.parents[1]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

Var MulColBroadcast(const Var& a, const Var& col) {
  MGBR_CHECK_EQ(col.cols(), 1);
  MGBR_CHECK_EQ(col.rows(), a.rows());
  Tensor out = a.value();
  const float* cp = col.value().data();
  for (int64_t r = 0; r < out.rows(); ++r) {
    float* op = out.data() + r * out.cols();
    for (int64_t c = 0; c < out.cols(); ++c) op[c] *= cp[r];
  }
  return MakeOpVar(std::move(out), {a, col}, [](VarNode& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& cv = n.parents[1]->value;
    if (n.parents[0]->requires_grad) {
      Tensor d = n.grad;
      for (int64_t r = 0; r < d.rows(); ++r) {
        float* dp = d.data() + r * d.cols();
        for (int64_t c = 0; c < d.cols(); ++c) dp[c] *= cv.data()[r];
      }
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
    if (n.parents[1]->requires_grad) {
      Tensor d(av.rows(), 1);
      for (int64_t r = 0; r < av.rows(); ++r) {
        const float* gp = n.grad.data() + r * av.cols();
        const float* ap = av.data() + r * av.cols();
        double acc = 0.0;
        for (int64_t c = 0; c < av.cols(); ++c) acc += gp[c] * ap[c];
        d.data()[r] = static_cast<float>(acc);
      }
      n.parents[1]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

Var BroadcastRow(const Var& row, int64_t n_rows) {
  MGBR_CHECK_EQ(row.rows(), 1);
  MGBR_CHECK_GT(n_rows, 0);
  Tensor out(n_rows, row.cols());
  const float* rp = row.value().data();
  for (int64_t r = 0; r < n_rows; ++r) {
    float* op = out.data() + r * out.cols();
    for (int64_t c = 0; c < out.cols(); ++c) op[c] = rp[c];
  }
  return MakeOpVar(std::move(out), {row}, [](VarNode& n) {
    if (n.parents[0]->requires_grad) {
      Tensor d(1, n.grad.cols());
      for (int64_t r = 0; r < n.grad.rows(); ++r) {
        const float* gp = n.grad.data() + r * n.grad.cols();
        float* dp = d.data();
        for (int64_t c = 0; c < n.grad.cols(); ++c) dp[c] += gp[c];
      }
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

namespace {

/// C += A @ B via the register-tiled, cache-blocked kernel layer
/// (tensor/kernels.h). Parallel over rows of C: each output row is
/// owned by exactly one chunk and its k-accumulation order is fixed by
/// the kernel's kc-block structure, so results are bit-identical for
/// every thread count and for SIMD on/off.
void GemmAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  MGBR_CHECK_EQ(b.rows(), k);
  MGBR_CHECK_EQ(c->rows(), m);
  MGBR_CHECK_EQ(c->cols(), n);
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c->data();
  ParallelFor(0, m, GemmRowGrain(k * n), [=](int64_t lo, int64_t hi) {
    kernels::GemmRowsAB(ap + lo * k, bp, cp + lo * n, hi - lo, k, n);
  });
}

/// C += Aᵀ @ B. Parallel over rows of C (columns of A).
void GemmAtBAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  MGBR_CHECK_EQ(b.rows(), k);
  MGBR_CHECK_EQ(c->rows(), m);
  MGBR_CHECK_EQ(c->cols(), n);
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c->data();
  ParallelFor(0, m, GemmRowGrain(k * n), [=](int64_t lo, int64_t hi) {
    kernels::GemmRowsAtB(ap, m, lo, bp, cp + lo * n, hi - lo, k, n);
  });
}

/// C += A @ Bᵀ. Parallel over rows of C; per element the kernel uses
/// the fixed-lane dot-product reduction documented in kernels.h.
void GemmABtAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  MGBR_CHECK_EQ(b.cols(), k);
  MGBR_CHECK_EQ(c->rows(), m);
  MGBR_CHECK_EQ(c->cols(), n);
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c->data();
  ParallelFor(0, m, GemmRowGrain(k * n), [=](int64_t lo, int64_t hi) {
    kernels::GemmRowsABt(ap + lo * k, bp, cp + lo * n, hi - lo, k, n);
  });
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  MGBR_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch: ", a.rows(),
                 "x", a.cols(), " @ ", b.rows(), "x", b.cols());
  Tensor out(a.rows(), b.cols());
  GemmAccumulate(a.value(), b.value(), &out);
  return MakeOpVar(std::move(out), {a, b}, [](VarNode& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    if (n.parents[0]->requires_grad) {
      // dA = dC @ Bᵀ
      GemmABtAccumulate(n.grad, bv, &n.parents[0]->EnsureGrad());
    }
    if (n.parents[1]->requires_grad) {
      // dB = Aᵀ @ dC
      GemmAtBAccumulate(av, n.grad, &n.parents[1]->EnsureGrad());
    }
  });
}

Var Transpose(const Var& a) {
  Tensor out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out.at(c, r) = a.value().at(r, c);
    }
  }
  return MakeOpVar(std::move(out), {a}, [](VarNode& n) {
    if (n.parents[0]->requires_grad) {
      Tensor d(n.grad.cols(), n.grad.rows());
      for (int64_t r = 0; r < n.grad.rows(); ++r) {
        for (int64_t c = 0; c < n.grad.cols(); ++c) {
          d.at(c, r) = n.grad.at(r, c);
        }
      }
      n.parents[0]->EnsureGrad().AccumulateInPlace(d);
    }
  });
}

// ---------------------------------------------------------------------------
// Shape ops.
// ---------------------------------------------------------------------------

Var ConcatCols(const std::vector<Var>& parts) {
  MGBR_CHECK(!parts.empty());
  const int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  for (const Var& p : parts) {
    MGBR_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  Tensor out(rows, total_cols);
  int64_t offset = 0;
  for (const Var& p : parts) {
    const Tensor& pv = p.value();
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = pv.data() + r * pv.cols();
      float* dst = out.data() + r * total_cols + offset;
      for (int64_t c = 0; c < pv.cols(); ++c) dst[c] = src[c];
    }
    offset += p.cols();
  }
  return MakeOpVar(std::move(out), parts, [](VarNode& n) {
    int64_t off = 0;
    const int64_t total = n.grad.cols();
    for (auto& parent : n.parents) {
      const int64_t pc = parent->value.cols();
      if (parent->requires_grad) {
        Tensor d(n.grad.rows(), pc);
        for (int64_t r = 0; r < n.grad.rows(); ++r) {
          const float* src = n.grad.data() + r * total + off;
          float* dst = d.data() + r * pc;
          for (int64_t c = 0; c < pc; ++c) dst[c] = src[c];
        }
        parent->EnsureGrad().AccumulateInPlace(d);
      }
      off += pc;
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  MGBR_CHECK(!parts.empty());
  const int64_t cols = parts[0].cols();
  int64_t total_rows = 0;
  for (const Var& p : parts) {
    MGBR_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  Tensor out(total_rows, cols);
  int64_t offset = 0;
  for (const Var& p : parts) {
    const Tensor& pv = p.value();
    for (int64_t i = 0; i < pv.numel(); ++i) {
      out.data()[offset * cols + i] = pv.data()[i];
    }
    offset += p.rows();
  }
  return MakeOpVar(std::move(out), parts, [](VarNode& n) {
    int64_t off = 0;
    for (auto& parent : n.parents) {
      const int64_t pr = parent->value.rows();
      const int64_t pc = parent->value.cols();
      if (parent->requires_grad) {
        Tensor d(pr, pc);
        for (int64_t i = 0; i < pr * pc; ++i) {
          d.data()[i] = n.grad.data()[off * pc + i];
        }
        parent->EnsureGrad().AccumulateInPlace(d);
      }
      off += pr;
    }
  });
}

Var SliceCols(const Var& a, int64_t start, int64_t len) {
  MGBR_CHECK_GE(start, 0);
  MGBR_CHECK_GE(len, 0);
  MGBR_CHECK_LE(start + len, a.cols());
  Tensor out(a.rows(), len);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.value().data() + r * a.cols() + start;
    float* dst = out.data() + r * len;
    for (int64_t c = 0; c < len; ++c) dst[c] = src[c];
  }
  return MakeOpVar(std::move(out), {a}, [start, len](VarNode& n) {
    if (n.parents[0]->requires_grad) {
      Tensor& pg = n.parents[0]->EnsureGrad();
      for (int64_t r = 0; r < n.grad.rows(); ++r) {
        const float* src = n.grad.data() + r * len;
        float* dst = pg.data() + r * pg.cols() + start;
        for (int64_t c = 0; c < len; ++c) dst[c] += src[c];
      }
    }
  });
}

Var SliceRows(const Var& a, int64_t start, int64_t len) {
  MGBR_CHECK_GE(start, 0);
  MGBR_CHECK_GE(len, 0);
  MGBR_CHECK_LE(start + len, a.rows());
  const int64_t d = a.cols();
  Tensor out(len, d);
  const float* src = a.value().data() + start * d;
  float* dst = out.data();
  for (int64_t i = 0; i < len * d; ++i) dst[i] = src[i];
  return MakeOpVar(std::move(out), {a}, [start, len, d](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& pg = n.parents[0]->EnsureGrad();
    const float* src2 = n.grad.data();
    float* dst2 = pg.data() + start * d;
    for (int64_t i = 0; i < len * d; ++i) dst2[i] += src2[i];
  });
}

Var Reshape(const Var& a, int64_t rows, int64_t cols) {
  MGBR_CHECK_EQ(rows * cols, a.value().numel());
  Tensor out(rows, cols);
  const float* src = a.value().data();
  float* dst = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) dst[i] = src[i];
  return MakeOpVar(std::move(out), {a}, [](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& pg = n.parents[0]->EnsureGrad();
    const float* src2 = n.grad.data();
    float* dst2 = pg.data();
    for (int64_t i = 0; i < pg.numel(); ++i) dst2[i] += src2[i];
  });
}

Var Rows(const Var& a, const std::vector<int64_t>& indices) {
  const int64_t d = a.cols();
  Tensor out(static_cast<int64_t>(indices.size()), d);
  for (size_t r = 0; r < indices.size(); ++r) {
    MGBR_CHECK(indices[r] >= 0 && indices[r] < a.rows());
    const float* src = a.value().data() + indices[r] * d;
    float* dst = out.data() + static_cast<int64_t>(r) * d;
    for (int64_t c = 0; c < d; ++c) dst[c] = src[c];
  }
  return MakeOpVar(std::move(out), {a}, [indices, d](VarNode& n) {
    if (n.parents[0]->requires_grad) {
      Tensor& pg = n.parents[0]->EnsureGrad();
      for (size_t r = 0; r < indices.size(); ++r) {
        const float* src = n.grad.data() + static_cast<int64_t>(r) * d;
        float* dst = pg.data() + indices[r] * d;
        for (int64_t c = 0; c < d; ++c) dst[c] += src[c];
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Unary elementwise.
// ---------------------------------------------------------------------------

namespace {

/// Builds a unary elementwise op. `dydx` receives (x, y) and returns the
/// local derivative.
template <typename Fwd, typename Dydx>
Var UnaryOp(const Var& a, Fwd fwd, Dydx dydx) {
  Tensor out = a.value();
  float* op = out.data();
  ParallelFor(0, out.numel(), kElemGrain, [op, &fwd](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] = fwd(op[i]);
  });
  Tensor saved = out;  // many derivatives are cheaper in terms of y
  return MakeOpVar(std::move(out), {a},
                   [saved, dydx](VarNode& n) {
                     if (!n.parents[0]->requires_grad) return;
                     const Tensor& xv = n.parents[0]->value;
                     Tensor d = n.grad;
                     float* dp = d.data();
                     const float* xp = xv.data();
                     const float* yp = saved.data();
                     ParallelFor(0, d.numel(), kElemGrain,
                                 [&](int64_t lo, int64_t hi) {
                                   for (int64_t i = lo; i < hi; ++i) {
                                     dp[i] *= dydx(xp[i], yp[i]);
                                   }
                                 });
                     n.parents[0]->EnsureGrad().AccumulateInPlace(d);
                   });
}

}  // namespace

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, [](float x) { return StableSigmoid(x); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var LeakyRelu(const Var& a, float slope) {
  return UnaryOp(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var Log(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Var Softplus(const Var& a) {
  return UnaryOp(
      a, [](float x) { return StableSoftplus(x); },
      [](float x, float) { return StableSigmoid(x); });
}

Var LogSigmoid(const Var& a) {
  return UnaryOp(
      a, [](float x) { return -StableSoftplus(-x); },
      [](float x, float) { return 1.0f - StableSigmoid(x); });
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

Var Sum(const Var& a) {
  Tensor out = Tensor::Scalar(static_cast<float>(a.value().Sum()));
  return MakeOpVar(std::move(out), {a}, [](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    const float g = n.grad.item();
    Tensor& pg = n.parents[0]->EnsureGrad();
    float* dst = pg.data();
    for (int64_t i = 0; i < pg.numel(); ++i) dst[i] += g;
  });
}

Var Mean(const Var& a) {
  MGBR_CHECK_GT(a.value().numel(), 0);
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  Tensor out = Tensor::Scalar(static_cast<float>(a.value().Sum()) * inv);
  return MakeOpVar(std::move(out), {a}, [inv](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    const float g = n.grad.item() * inv;
    Tensor& pg = n.parents[0]->EnsureGrad();
    float* dst = pg.data();
    for (int64_t i = 0; i < pg.numel(); ++i) dst[i] += g;
  });
}

Var RowSum(const Var& a) {
  Tensor out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.value().data() + r * a.cols();
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += src[c];
    out.data()[r] = static_cast<float>(acc);
  }
  return MakeOpVar(std::move(out), {a}, [](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& pg = n.parents[0]->EnsureGrad();
    for (int64_t r = 0; r < pg.rows(); ++r) {
      const float g = n.grad.data()[r];
      float* dst = pg.data() + r * pg.cols();
      for (int64_t c = 0; c < pg.cols(); ++c) dst[c] += g;
    }
  });
}

Var RowMean(const Var& a) {
  MGBR_CHECK_GT(a.cols(), 0);
  return MulScalar(RowSum(a), 1.0f / static_cast<float>(a.cols()));
}

Var SumOverRows(const Var& a) {
  Tensor out(1, a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.value().data() + r * a.cols();
    float* dst = out.data();
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
  return MakeOpVar(std::move(out), {a}, [](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& pg = n.parents[0]->EnsureGrad();
    for (int64_t r = 0; r < pg.rows(); ++r) {
      float* dst = pg.data() + r * pg.cols();
      const float* g = n.grad.data();
      for (int64_t c = 0; c < pg.cols(); ++c) dst[c] += g[c];
    }
  });
}

Var MeanOverRows(const Var& a) {
  MGBR_CHECK_GT(a.rows(), 0);
  return MulScalar(SumOverRows(a), 1.0f / static_cast<float>(a.rows()));
}

Var SumSquares(const Var& a) { return Sum(Square(a)); }

// ---------------------------------------------------------------------------
// Softmax & losses.
// ---------------------------------------------------------------------------

Var BlockMix(const Var& blocks, const Var& weights, int64_t block_dim) {
  const int64_t b = blocks.rows();
  const int64_t k = weights.cols();
  MGBR_CHECK_EQ(weights.rows(), b);
  MGBR_CHECK_EQ(blocks.cols(), k * block_dim);
  Tensor out(b, block_dim);
  {
    const float* ep = blocks.value().data();
    const float* wp = weights.value().data();
    float* op = out.data();
    ParallelFor(0, b, RowGrain(k * block_dim), [=](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float* erow = ep + r * k * block_dim;
        const float* wrow = wp + r * k;
        float* orow = op + r * block_dim;
        for (int64_t kk = 0; kk < k; ++kk) {
          const float w = wrow[kk];
          const float* eblk = erow + kk * block_dim;
          for (int64_t j = 0; j < block_dim; ++j) orow[j] += w * eblk[j];
        }
      }
    });
  }
  return MakeOpVar(
      std::move(out), {blocks, weights}, [block_dim, k](VarNode& n) {
        const Tensor& ev = n.parents[0]->value;
        const Tensor& wv = n.parents[1]->value;
        const int64_t b2 = ev.rows();
        const int64_t grain = RowGrain(k * block_dim);
        if (n.parents[0]->requires_grad) {
          Tensor& eg = n.parents[0]->EnsureGrad();
          ParallelFor(0, b2, grain, [&, block_dim, k](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const float* grow = n.grad.data() + r * block_dim;
              const float* wrow = wv.data() + r * k;
              float* egrow = eg.data() + r * k * block_dim;
              for (int64_t kk = 0; kk < k; ++kk) {
                const float w = wrow[kk];
                float* eblk = egrow + kk * block_dim;
                for (int64_t j = 0; j < block_dim; ++j) eblk[j] += w * grow[j];
              }
            }
          });
        }
        if (n.parents[1]->requires_grad) {
          Tensor& wg = n.parents[1]->EnsureGrad();
          ParallelFor(0, b2, grain, [&, block_dim, k](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const float* grow = n.grad.data() + r * block_dim;
              const float* erow = ev.data() + r * k * block_dim;
              float* wgrow = wg.data() + r * k;
              for (int64_t kk = 0; kk < k; ++kk) {
                const float* eblk = erow + kk * block_dim;
                double acc = 0.0;
                for (int64_t j = 0; j < block_dim; ++j) {
                  acc += grow[j] * eblk[j];
                }
                wgrow[kk] += static_cast<float>(acc);
              }
            }
          });
        }
      });
}

Var RowSoftmax(const Var& a) {
  Tensor out = a.value();
  const int64_t cols = out.cols();
  float* op = out.data();
  ParallelFor(0, out.rows(), RowGrain(cols), [op, cols](int64_t lo,
                                                        int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = op + r * cols;
      float mx = row[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      double denom = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        row[c] = std::exp(row[c] - mx);
        denom += row[c];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
    }
  });
  Tensor saved = out;
  return MakeOpVar(std::move(out), {a}, [saved](VarNode& n) {
    if (!n.parents[0]->requires_grad) return;
    // dx = y ⊙ (g - rowsum(g ⊙ y))
    Tensor d = n.grad;
    const int64_t dcols = d.cols();
    float* dbase = d.data();
    const float* ybase = saved.data();
    ParallelFor(0, d.rows(), RowGrain(dcols),
                [dbase, ybase, dcols](int64_t lo, int64_t hi) {
                  for (int64_t r = lo; r < hi; ++r) {
                    float* dp = dbase + r * dcols;
                    const float* yp = ybase + r * dcols;
                    double dot = 0.0;
                    for (int64_t c = 0; c < dcols; ++c) dot += dp[c] * yp[c];
                    for (int64_t c = 0; c < dcols; ++c) {
                      dp[c] = yp[c] * (dp[c] - static_cast<float>(dot));
                    }
                  }
                });
    n.parents[0]->EnsureGrad().AccumulateInPlace(d);
  });
}

Var BprLoss(const Var& pos_scores, const Var& neg_scores) {
  MGBR_CHECK(pos_scores.value().same_shape(neg_scores.value()));
  MGBR_CHECK_EQ(pos_scores.cols(), 1);
  return Neg(Mean(LogSigmoid(Sub(pos_scores, neg_scores))));
}

Var ListNetLoss(const Var& scores, const Tensor& target) {
  MGBR_CHECK(scores.value().same_shape(target));
  Var log_probs = Log(AddScalar(RowSoftmax(scores), 1e-12f));
  Var target_var(target, /*requires_grad=*/false);
  return Neg(Mean(RowSum(Mul(log_probs, target_var))));
}

}  // namespace mgbr
