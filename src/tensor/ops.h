#ifndef MGBR_TENSOR_OPS_H_
#define MGBR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/variable.h"

namespace mgbr {

// ---------------------------------------------------------------------------
// Elementwise binary ops (shapes must match exactly).
// ---------------------------------------------------------------------------

/// out = a + b.
Var Add(const Var& a, const Var& b);
/// out = a - b.
Var Sub(const Var& a, const Var& b);
/// out = a ⊙ b (Hadamard product).
Var Mul(const Var& a, const Var& b);
/// out = a / b (elementwise; caller guarantees b != 0).
Var Div(const Var& a, const Var& b);

// ---------------------------------------------------------------------------
// Scalar ops.
// ---------------------------------------------------------------------------

/// out = a + s.
Var AddScalar(const Var& a, float s);
/// out = s * a.
Var MulScalar(const Var& a, float s);

// ---------------------------------------------------------------------------
// Broadcast ops. These are the only implicit-broadcast forms in the
// engine; everything else requires exact shapes.
// ---------------------------------------------------------------------------

/// out[r,:] = a[r,:] + row[0,:]. `row` must be 1 x a.cols().
Var AddRowBroadcast(const Var& a, const Var& row);

/// out[r,c] = a[r,c] * col[r,0]. `col` must be a.rows() x 1.
Var MulColBroadcast(const Var& a, const Var& col);

/// Repeats a 1 x d row `n` times into an n x d tensor.
Var BroadcastRow(const Var& row, int64_t n);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// Dense matrix product: (m x k) @ (k x n) -> (m x n).
Var MatMul(const Var& a, const Var& b);

/// Matrix transpose.
Var Transpose(const Var& a);

// ---------------------------------------------------------------------------
// Shape ops.
// ---------------------------------------------------------------------------

/// Horizontal concatenation: all parts share rows; cols add up.
Var ConcatCols(const std::vector<Var>& parts);

/// Vertical concatenation: all parts share cols; rows add up.
Var ConcatRows(const std::vector<Var>& parts);

/// Column slice [start, start+len).
Var SliceCols(const Var& a, int64_t start, int64_t len);

/// Row slice [start, start+len).
Var SliceRows(const Var& a, int64_t start, int64_t len);

/// Reinterprets the (contiguous, row-major) data as rows x cols.
/// rows * cols must equal a.numel().
Var Reshape(const Var& a, int64_t rows, int64_t cols);

/// Row gather: out[r,:] = a[indices[r],:]. Gradient scatter-adds, so a
/// row referenced multiple times accumulates all contributions (this is
/// the embedding-lookup op).
Var Rows(const Var& a, const std::vector<int64_t>& indices);

// ---------------------------------------------------------------------------
// Unary elementwise.
// ---------------------------------------------------------------------------

Var Neg(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
/// max(x, slope*x) with slope in (0, 1); NGCF's activation.
Var LeakyRelu(const Var& a, float slope = 0.2f);
Var Exp(const Var& a);
/// Natural log; caller guarantees positive inputs.
Var Log(const Var& a);
Var Square(const Var& a);
/// Numerically stable log(1 + e^x).
Var Softplus(const Var& a);
/// Numerically stable log(sigmoid(x)) = -softplus(-x).
Var LogSigmoid(const Var& a);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all elements -> 1x1.
Var Sum(const Var& a);
/// Mean of all elements -> 1x1.
Var Mean(const Var& a);
/// Per-row sum: (B x d) -> (B x 1).
Var RowSum(const Var& a);
/// Per-row mean: (B x d) -> (B x 1).
Var RowMean(const Var& a);
/// Column means: (B x d) -> (1 x d).
Var MeanOverRows(const Var& a);
/// Column sums: (B x d) -> (1 x d).
Var SumOverRows(const Var& a);
/// Sum of squared elements -> 1x1 (L2 regularization helper).
Var SumSquares(const Var& a);

// ---------------------------------------------------------------------------
// Expert mixtures.
// ---------------------------------------------------------------------------

/// Block mixture for mixture-of-experts gates. `blocks` is (B x K*d)
/// holding K consecutive d-wide expert outputs per row; `weights` is
/// (B x K). Returns (B x d) with out[r] = sum_k weights[r,k] *
/// blocks[r, k*d : (k+1)*d]. Equivalent to K MulColBroadcast+Add ops
/// but a single tape node (the hot path of the multi-task module).
Var BlockMix(const Var& blocks, const Var& weights, int64_t block_dim);

// ---------------------------------------------------------------------------
// Row-wise softmax and ranking-loss helpers.
// ---------------------------------------------------------------------------

/// Softmax along each row (numerically stabilized).
Var RowSoftmax(const Var& a);

/// Mean BPR loss: -mean(log sigmoid(pos - neg)); pos/neg are (B x 1).
Var BprLoss(const Var& pos_scores, const Var& neg_scores);

/// ListNet cross-entropy: -mean over rows of sum_j target[r,j] *
/// log softmax(scores)[r,j]. `target` rows should sum to 1; it is a
/// constant (no gradient flows into it).
Var ListNetLoss(const Var& scores, const Tensor& target);

}  // namespace mgbr

#endif  // MGBR_TENSOR_OPS_H_
