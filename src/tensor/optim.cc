#include "tensor/optim.h"

#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace mgbr {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const Var& p : params_) {
    MGBR_CHECK(p.defined());
    MGBR_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

double ClipGradNorm(std::vector<Var>& params, double max_norm) {
  double total = 0.0;
  for (const Var& p : params) {
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const double norm = std::sqrt(total);
  if (max_norm > 0.0 && norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (Var& p : params) {
      // Safe: grad() exposes the node's buffer; scaling in place is the
      // optimizer's prerogative between Backward() and Step().
      const_cast<Tensor&>(p.grad()).ScaleInPlace(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Var> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::Step() {
  for (Var& p : params_) {
    Tensor& value = p.mutable_value();
    const Tensor& grad = p.grad();
    float* vp = value.data();
    const float* gp = grad.data();
    for (int64_t i = 0; i < value.numel(); ++i) vp[i] -= lr_ * gp[i];
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

Status Adam::RestoreState(int64_t t, float lr, std::vector<Tensor> m,
                          std::vector<Tensor> v) {
  if (t < 0) {
    return Status::InvalidArgument(
        StrCat("Adam step count must be >= 0, got ", t));
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        StrCat("Adam moment count mismatch: got ", m.size(), "/", v.size(),
               " tensors, optimizer has ", params_.size(), " parameters"));
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& p = params_[i].value();
    if (m[i].rows() != p.rows() || m[i].cols() != p.cols() ||
        v[i].rows() != p.rows() || v[i].cols() != p.cols()) {
      return Status::InvalidArgument(
          StrCat("Adam moment shape mismatch at parameter ", i));
    }
  }
  t_ = t;
  lr_ = lr;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t idx = 0; idx < params_.size(); ++idx) {
    Tensor& value = params_[idx].mutable_value();
    const Tensor& grad = params_[idx].grad();
    float* vp = value.data();
    const float* gp = grad.data();
    float* mp = m_[idx].data();
    float* sp = v_[idx].data();
    for (int64_t i = 0; i < value.numel(); ++i) {
      float g = gp[i];
      if (weight_decay_ != 0.0f) g += weight_decay_ * vp[i];
      mp[i] = beta1_ * mp[i] + (1.0f - beta1_) * g;
      sp[i] = beta2_ * sp[i] + (1.0f - beta2_) * g * g;
      const float m_hat = mp[i] / bc1;
      const float v_hat = sp[i] / bc2;
      vp[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace mgbr
