#ifndef MGBR_TENSOR_VARIABLE_H_
#define MGBR_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mgbr {

namespace internal {
struct VarNode;
}  // namespace internal

/// RAII guard that disables autograd-tape construction on the current
/// thread. While a NoGradScope is alive, every op built through
/// `internal::MakeOpVar` (which covers ops.cc, nn.cc and gcn.cc)
/// produces a plain value node: no parents are retained, no backward
/// closure is stored, and `requires_grad` is forced off. The forward
/// kernels and their reduction orders are untouched, so values are
/// bitwise identical to the tape path. Scopes nest; each thread tracks
/// its own flag, so concurrent evaluation and training never interact.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

  /// True when the calling thread is inside a NoGradScope.
  static bool Active();

 private:
  bool prev_;
};

/// Handle to a node in a dynamically-built reverse-mode autograd tape.
///
/// A `Var` wraps a Tensor value plus (when `requires_grad`) a gradient
/// buffer and a backward closure connecting it to its inputs. Ops on
/// Vars (ops.h) build the tape; `Backward()` on a scalar output walks
/// it in reverse topological order and accumulates gradients into every
/// reachable leaf.
///
/// Vars are cheap shared handles: copying a Var aliases the same node.
/// A default-constructed Var is null (`defined()` is false).
class Var {
 public:
  Var() = default;

  /// Wraps `value` as a tape node. Leaf parameters pass
  /// `requires_grad=true`; constant inputs pass false.
  explicit Var(Tensor value, bool requires_grad = false);

  Var(const Var&) = default;
  Var& operator=(const Var&) = default;
  Var(Var&&) = default;
  Var& operator=(Var&&) = default;

  /// True when this handle points at a node.
  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();

  /// Gradient w.r.t. this node; zero tensor before any Backward().
  const Tensor& grad() const;

  bool requires_grad() const;

  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

  /// Resets this node's gradient buffer to zero.
  void ZeroGrad();

  /// Runs backpropagation from this node, which must hold a 1x1 scalar.
  /// Gradients accumulate (+=) into every node with requires_grad, so
  /// call ZeroGrad (or optimizer ZeroGrad) between steps.
  void Backward() const;

  /// Internal node access for op implementations.
  const std::shared_ptr<internal::VarNode>& node() const { return node_; }

 private:
  std::shared_ptr<internal::VarNode> node_;
};

namespace internal {

/// Tape node: value, gradient, inputs and the backward closure.
struct VarNode {
  Tensor value;
  Tensor grad;  // allocated lazily on first access
  bool requires_grad = false;
  bool grad_allocated = false;
  std::vector<std::shared_ptr<VarNode>> parents;
  /// Accumulates this node's grad into its parents' grads.
  std::function<void(VarNode&)> backward;

  Tensor& EnsureGrad();
};

/// Builds a non-leaf node from parents; requires_grad is inherited.
Var MakeOpVar(Tensor value, std::vector<Var> parents,
              std::function<void(VarNode&)> backward);

}  // namespace internal

}  // namespace mgbr

#endif  // MGBR_TENSOR_VARIABLE_H_
