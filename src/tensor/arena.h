#ifndef MGBR_TENSOR_ARENA_H_
#define MGBR_TENSOR_ARENA_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mgbr {

/// Size-bucketed recycling allocator for tensor float buffers.
///
/// Autograd builds and frees an identical-shaped tape every training
/// batch, so the same buffer sizes are requested over and over — the
/// ideal workload for a free-list arena. Buffers are std::vector<float>
/// instances whose capacity is rounded up to a power of two (min 64
/// floats); Release() parks them in the matching bucket and Acquire()
/// hands them back, cleared. Values are always zero-filled (Acquire) or
/// fully overwritten (AcquireCopy), so recycling cannot change any
/// computed result: arena on/off is bit-identical by construction and
/// asserted by tests/kernels_test.cc.
///
/// Thread safety: bucket access is guarded by one mutex (tensor
/// construction is not a per-element hot path; the kernels are), stats
/// are relaxed atomics. The global instance is intentionally leaked so
/// tensors with static storage duration can release during process
/// teardown.
class TensorArena {
 public:
  /// Process-wide arena used by Tensor. Never destroyed.
  static TensorArena& Global();

  /// Runtime switch. Defaults to on; the MGBR_ARENA environment
  /// variable set to "0" disables recycling (buffers are then plain
  /// allocations and Release() frees). Outputs are identical either
  /// way — the switch exists for A/B benchmarking and leak triage.
  static bool Enabled();
  static void SetEnabled(bool on);

  /// Returns a buffer of size n, zero-filled, capacity >= n.
  std::vector<float> Acquire(int64_t n);

  /// Returns a buffer of size n holding a copy of src[0..n) (skips the
  /// zero-fill that Acquire would pay).
  std::vector<float> AcquireCopy(const float* src, int64_t n);

  /// Returns a buffer to its bucket (or frees it: empty buffers,
  /// disabled arena, or cache over capacity).
  void Release(std::vector<float>&& buf);

  struct Stats {
    int64_t bytes_in_use = 0;     ///< live bytes handed out, by capacity
    int64_t bytes_cached = 0;     ///< bytes parked in buckets
    int64_t high_water_bytes = 0; ///< max bytes_in_use ever observed
    int64_t hits = 0;             ///< acquires served from a bucket
    int64_t misses = 0;           ///< acquires that allocated
  };
  Stats GetStats() const;

  /// Frees every cached buffer (tests, memory-pressure handling).
  void Trim();

  /// Zeroes hit/miss/high-water stats (bytes_in_use is live state and
  /// is left alone).
  void ResetStats();

  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

 private:
  // Bucket b holds buffers of capacity kMinCapacity << b. 26 buckets
  // spans 64 floats .. 8G floats, far beyond any tensor here.
  static constexpr int kBuckets = 26;
  static constexpr int64_t kMinCapacity = 64;
  // Cached-byte ceiling; beyond it Release frees instead of parking.
  static constexpr int64_t kMaxCachedBytes = int64_t{256} << 20;

  static int BucketIndex(int64_t capacity);

  void NoteAcquire(int64_t capacity_bytes, bool hit);
  void NoteRelease(int64_t capacity_bytes);

  mutable std::mutex mu_;
  std::vector<std::vector<float>> buckets_[kBuckets];
  int64_t bytes_cached_ = 0;  // guarded by mu_

  std::atomic<int64_t> bytes_in_use_{0};
  std::atomic<int64_t> high_water_bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace mgbr

#endif  // MGBR_TENSOR_ARENA_H_
