#include "tensor/quant.h"

#include <cassert>

#include "common/checksum.h"
#include "common/parallel.h"
#include "tensor/kernels.h"

namespace mgbr {

namespace {

// Rows per ParallelFor chunk for the full-table GEMV. Chunks write
// disjoint out[] ranges, so the partition never affects the scores.
constexpr int64_t kGemvGrain = 1024;

}  // namespace

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kFp32:
      return "fp32";
    case QuantMode::kBf16:
      return "bf16";
    case QuantMode::kInt8:
      return "int8";
  }
  return "fp32";
}

bool ParseQuantMode(const std::string& text, QuantMode* mode) {
  if (text == "off" || text == "fp32") {
    *mode = QuantMode::kFp32;
    return true;
  }
  if (text == "bf16") {
    *mode = QuantMode::kBf16;
    return true;
  }
  if (text == "int8") {
    *mode = QuantMode::kInt8;
    return true;
  }
  return false;
}

void QuantizedTable::Build(const float* data, int64_t n, int64_t d,
                           QuantMode mode) {
  mode_ = mode;
  n_ = n;
  d_ = d;
  fp32_.clear();
  bf16_.clear();
  int8_.clear();
  scales_.clear();
  const size_t total = static_cast<size_t>(n * d);
  switch (mode) {
    case QuantMode::kFp32:
      fp32_.assign(data, data + total);
      break;
    case QuantMode::kBf16:
      bf16_.resize(total);
      kernels::Fp32ToBf16(data, bf16_.data(), n * d);
      break;
    case QuantMode::kInt8:
      int8_.resize(total);
      scales_.resize(static_cast<size_t>(n));
      kernels::QuantizeInt8Rows(data, int8_.data(), scales_.data(), n, d);
      break;
  }
}

void QuantizedTable::ScoreAll(const float* query, float* out) const {
  switch (mode_) {
    case QuantMode::kFp32:
      ParallelFor(0, n_, kGemvGrain, [&](int64_t b, int64_t e) {
        kernels::GemvRowsFp32(fp32_.data(), query, out, b, e, d_);
      });
      break;
    case QuantMode::kBf16:
      ParallelFor(0, n_, kGemvGrain, [&](int64_t b, int64_t e) {
        kernels::GemvRowsBf16(bf16_.data(), query, out, b, e, d_);
      });
      break;
    case QuantMode::kInt8:
      ParallelFor(0, n_, kGemvGrain, [&](int64_t b, int64_t e) {
        kernels::GemvRowsInt8(int8_.data(), scales_.data(), query, out, b, e,
                              d_);
      });
      break;
  }
}

void QuantizedTable::ScoreRows(const float* query, const int64_t* ids,
                               int64_t m, float* out) const {
  for (int64_t i = 0; i < m; ++i) {
    const int64_t r = ids[i];
    assert(r >= 0 && r < n_);
    switch (mode_) {
      case QuantMode::kFp32:
        kernels::GemvRowsFp32(fp32_.data() + r * d_, query, out + i, 0, 1,
                              d_);
        break;
      case QuantMode::kBf16:
        kernels::GemvRowsBf16(bf16_.data() + r * d_, query, out + i, 0, 1,
                              d_);
        break;
      case QuantMode::kInt8:
        kernels::GemvRowsInt8(int8_.data() + r * d_, scales_.data() + r,
                              query, out + i, 0, 1, d_);
        break;
    }
  }
}

void QuantizedTable::DecodeRow(int64_t r, float* out) const {
  assert(r >= 0 && r < n_);
  switch (mode_) {
    case QuantMode::kFp32:
      for (int64_t j = 0; j < d_; ++j) out[j] = fp32_[r * d_ + j];
      break;
    case QuantMode::kBf16:
      kernels::Bf16ToFp32(bf16_.data() + r * d_, out, d_);
      break;
    case QuantMode::kInt8:
      kernels::DequantizeInt8Row(int8_.data() + r * d_, scales_[r], out, d_);
      break;
  }
}

int64_t QuantizedTable::storage_bytes() const {
  switch (mode_) {
    case QuantMode::kFp32:
      return n_ * d_ * static_cast<int64_t>(sizeof(float));
    case QuantMode::kBf16:
      return n_ * d_ * static_cast<int64_t>(sizeof(uint16_t));
    case QuantMode::kInt8:
      return n_ * d_ * static_cast<int64_t>(sizeof(int8_t)) +
             n_ * static_cast<int64_t>(sizeof(float));
  }
  return 0;
}

uint32_t QuantizedTable::Fingerprint() const {
  uint32_t crc = Crc32(&n_, sizeof(n_));
  crc = Crc32(&d_, sizeof(d_), crc);
  const int mode = static_cast<int>(mode_);
  crc = Crc32(&mode, sizeof(mode), crc);
  if (!fp32_.empty()) {
    crc = Crc32(fp32_.data(), fp32_.size() * sizeof(float), crc);
  }
  if (!bf16_.empty()) {
    crc = Crc32(bf16_.data(), bf16_.size() * sizeof(uint16_t), crc);
  }
  if (!int8_.empty()) {
    crc = Crc32(int8_.data(), int8_.size() * sizeof(int8_t), crc);
  }
  if (!scales_.empty()) {
    crc = Crc32(scales_.data(), scales_.size() * sizeof(float), crc);
  }
  return crc;
}

}  // namespace mgbr
