#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

// Both kernel variants are instantiated from one implementation file so
// their loop bodies can never drift apart (the bitwise-equality tests
// in tests/kernels_test.cc compare them directly). This translation
// unit is compiled with -fopenmp-simd (honor the pragmas) and
// -ffp-contract=off (no silent FMA divergence between the variants);
// see src/tensor/CMakeLists.txt.

#define MGBR_KERNELS_NS simd
#define MGBR_KERNELS_USE_SIMD 1
#include "tensor/kernels_impl.inc"
#undef MGBR_KERNELS_NS
#undef MGBR_KERNELS_USE_SIMD

#define MGBR_KERNELS_NS scalar
#define MGBR_KERNELS_USE_SIMD 0
#include "tensor/kernels_impl.inc"
#undef MGBR_KERNELS_NS
#undef MGBR_KERNELS_USE_SIMD

namespace mgbr {
namespace kernels {

namespace {

#ifndef MGBR_SIMD_DEFAULT
#define MGBR_SIMD_DEFAULT 1
#endif

bool InitialSimdEnabled() {
  const char* env = std::getenv("MGBR_SIMD");
  if (env != nullptr && *env != '\0') {
    return !(env[0] == '0' && env[1] == '\0');
  }
  return MGBR_SIMD_DEFAULT != 0;
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag{InitialSimdEnabled()};
  return flag;
}

}  // namespace

bool SimdEnabled() { return SimdFlag().load(std::memory_order_relaxed); }

void SetSimdEnabled(bool on) {
  SimdFlag().store(on, std::memory_order_relaxed);
}

#define MGBR_KERNELS_DISPATCH(fn, ...)    \
  do {                                    \
    if (SimdEnabled()) {                  \
      simd::fn(__VA_ARGS__);              \
    } else {                              \
      scalar::fn(__VA_ARGS__);            \
    }                                     \
  } while (0)

void GemmRowsAB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
  MGBR_KERNELS_DISPATCH(GemmRowsAB, a, b, c, m, k, n);
}

void GemmRowsAtB(const float* a, int64_t a_cols, int64_t col0,
                 const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  MGBR_KERNELS_DISPATCH(GemmRowsAtB, a, a_cols, col0, b, c, m, k, n);
}

void GemmRowsABt(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  MGBR_KERNELS_DISPATCH(GemmRowsABt, a, b, c, m, k, n);
}

void SpmmRows(const int64_t* row_ptr, const int64_t* col_idx,
              const float* values, const float* x, float* out,
              int64_t row_begin, int64_t row_end, int64_t d) {
  MGBR_KERNELS_DISPATCH(SpmmRows, row_ptr, col_idx, values, x, out,
                        row_begin, row_end, d);
}

void AddInPlace(float* dst, const float* src, int64_t n) {
  MGBR_KERNELS_DISPATCH(AddInPlace, dst, src, n);
}

void SubInPlace(float* dst, const float* src, int64_t n) {
  MGBR_KERNELS_DISPATCH(SubInPlace, dst, src, n);
}

void MulInPlace(float* dst, const float* src, int64_t n) {
  MGBR_KERNELS_DISPATCH(MulInPlace, dst, src, n);
}

void ScaleInPlace(float* dst, float s, int64_t n) {
  MGBR_KERNELS_DISPATCH(ScaleInPlace, dst, s, n);
}

void BiasActForward(Act act, const float* x, const float* bias, float* y,
                    int64_t rows, int64_t cols) {
  MGBR_KERNELS_DISPATCH(BiasActForward, act, x, bias, y, rows, cols);
}

void ActGradInPlace(Act act, float* g, const float* y, int64_t n) {
  MGBR_KERNELS_DISPATCH(ActGradInPlace, act, g, y, n);
}

void Fp32ToBf16(const float* src, uint16_t* dst, int64_t n) {
  MGBR_KERNELS_DISPATCH(Fp32ToBf16, src, dst, n);
}

void Bf16ToFp32(const uint16_t* src, float* dst, int64_t n) {
  MGBR_KERNELS_DISPATCH(Bf16ToFp32, src, dst, n);
}

void QuantizeInt8Rows(const float* src, int8_t* dst, float* scales,
                      int64_t rows, int64_t cols) {
  MGBR_KERNELS_DISPATCH(QuantizeInt8Rows, src, dst, scales, rows, cols);
}

void DequantizeInt8Row(const int8_t* src, float scale, float* dst,
                       int64_t n) {
  MGBR_KERNELS_DISPATCH(DequantizeInt8Row, src, scale, dst, n);
}

void GemvRowsFp32(const float* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d) {
  MGBR_KERNELS_DISPATCH(GemvRowsFp32, table, query, out, row_begin, row_end,
                        d);
}

void GemvRowsBf16(const uint16_t* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d) {
  MGBR_KERNELS_DISPATCH(GemvRowsBf16, table, query, out, row_begin, row_end,
                        d);
}

void GemvRowsInt8(const int8_t* table, const float* scales,
                  const float* query, float* out, int64_t row_begin,
                  int64_t row_end, int64_t d) {
  MGBR_KERNELS_DISPATCH(GemvRowsInt8, table, scales, query, out, row_begin,
                        row_end, d);
}

#undef MGBR_KERNELS_DISPATCH

}  // namespace kernels
}  // namespace mgbr
