#ifndef MGBR_TENSOR_KERNELS_H_
#define MGBR_TENSOR_KERNELS_H_

#include <cstdint>

namespace mgbr {
namespace kernels {

/// Vectorized, cache-blocked compute kernels behind the dense hot paths
/// (GEMM, SpMM, elementwise chains). Every kernel exists in two
/// variants compiled from the same source: `simd::` (inner loops carry
/// `#pragma omp simd`) and `scalar::` (no pragma). The public
/// free functions dispatch on `SimdEnabled()`.
///
/// Determinism contract (see docs/performance.md):
///  * Vectorization happens only over independent output lanes (the
///    `j` loops), never over a reduction, so lane order is irrelevant.
///  * Dot-product reductions (`GemmRowsABt`) accumulate into kLanes
///    fixed-width partial sums (lane l owns k indices with
///    k mod kLanes == l) followed by a pairwise tree reduction
///    (l, l+4), (s, s+2), (s, s+1) and a sequential tail; the order is
///    identical in both variants.
///  * The kernel translation unit is compiled with -ffp-contract=off
///    so neither variant silently fuses a*b+c into an FMA the other
///    does not.
/// Together these make simd-on and simd-off outputs bit-identical,
/// which tests/kernels_test.cc asserts.

/// Activation codes shared with nn.h (plain enum here so the kernel
/// layer does not depend on the autograd headers).
enum class Act : int { kNone = 0, kRelu = 1, kSigmoid = 2, kTanh = 3 };

/// Whether the dispatching wrappers use the `simd::` variants.
/// Default: the MGBR_SIMD CMake option, overridable by the MGBR_SIMD
/// environment variable ("0" disables) and at runtime by
/// SetSimdEnabled (tests, benchmarks).
bool SimdEnabled();
void SetSimdEnabled(bool on);

// ---------------------------------------------------------------------------
// Dense GEMM row-range kernels.
//
// All three accumulate into `m` contiguous rows of C (row-major,
// leading dimension n) and are safe to call concurrently on disjoint
// row ranges — ParallelFor partitions rows at the call site. C must
// not alias A or B.
// ---------------------------------------------------------------------------

/// C[0..m) += A[0..m) @ B. A is m x k (row-major, ld k), B is k x n.
void GemmRowsAB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);

/// C[0..m) += (Aᵀ @ B)[col0..col0+m). A is k x a_cols (row-major);
/// output row i is column col0+i of A against B (k x n).
void GemmRowsAtB(const float* a, int64_t a_cols, int64_t col0,
                 const float* b, float* c, int64_t m, int64_t k, int64_t n);

/// C[0..m) += A[0..m) @ Bᵀ. A is m x k, B is n x k; C(i,j) accumulates
/// dot(A row i, B row j) via the fixed-lane reduction described above.
void GemmRowsABt(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n);

// ---------------------------------------------------------------------------
// Sparse (CSR) row kernels.
// ---------------------------------------------------------------------------

/// out[row_begin..row_end) += CSR rows @ X, where X has `d` columns.
/// Row r of `out` accumulates values[e] * X[col_idx[e]] for
/// e in [row_ptr[r], row_ptr[r+1]), sequentially in e and vectorized
/// over the d output lanes.
void SpmmRows(const int64_t* row_ptr, const int64_t* col_idx,
              const float* values, const float* x, float* out,
              int64_t row_begin, int64_t row_end, int64_t d);

// ---------------------------------------------------------------------------
// Elementwise kernels.
// ---------------------------------------------------------------------------

/// dst[i] += src[i].
void AddInPlace(float* dst, const float* src, int64_t n);
/// dst[i] -= src[i].
void SubInPlace(float* dst, const float* src, int64_t n);
/// dst[i] *= src[i].
void MulInPlace(float* dst, const float* src, int64_t n);
/// dst[i] *= s.
void ScaleInPlace(float* dst, float s, int64_t n);

/// Fused y = act(x + bias) over a row-major block: `rows` rows of
/// `cols` columns, bias broadcast along rows. x and y may alias.
void BiasActForward(Act act, const float* x, const float* bias, float* y,
                    int64_t rows, int64_t cols);

/// g[i] *= act'(y[i]) where y is the saved forward output; the local
/// derivative of every supported activation is a function of y alone.
void ActGradInPlace(Act act, float* g, const float* y, int64_t n);

// ---------------------------------------------------------------------------
// Quantized-table kernels (bf16 / int8 storage, fp32 compute).
//
// Storage conversions are elementwise and exactly specified (RNE), so
// quantized bytes are identical across simd/scalar variants and thread
// counts. The GEMV kernels reuse the GemmRowsABt fixed-lane reduction
// (kLanes partial sums + pairwise tree + sequential tail) on the
// decoded values, so quantized scores carry the same determinism
// contract as the fp32 path. See docs/quantization.md.
// ---------------------------------------------------------------------------

/// dst[i] = bf16(src[i]) with round-to-nearest-even (NaNs quieted).
void Fp32ToBf16(const float* src, uint16_t* dst, int64_t n);
/// dst[i] = fp32(src[i]); exact — every bf16 value is an fp32 value.
void Bf16ToFp32(const uint16_t* src, float* dst, int64_t n);
/// Per-row symmetric int8 quantization of a row-major rows x cols
/// block: scales[r] = maxabs(row r) / 127 (0 for an all-zero row),
/// codes = nearbyint(src * (127 / maxabs)) clamped to [-127, 127].
void QuantizeInt8Rows(const float* src, int8_t* dst, float* scales,
                      int64_t rows, int64_t cols);
/// dst[i] = scale * src[i] — the exact decode the int8 GEMV scores with.
void DequantizeInt8Row(const int8_t* src, float scale, float* dst, int64_t n);

/// out[r] = dot(query, table row r) for r in [row_begin, row_end);
/// `table` is n x d row-major in the named storage format. Rows are
/// independent outputs, so ParallelFor may partition [0, n) freely.
void GemvRowsFp32(const float* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d);
void GemvRowsBf16(const uint16_t* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d);
/// Int8 rows decode as scales[r] * code; the dot accumulates
/// query[j] * float(code[j]) in fp32 and applies scales[r] once.
void GemvRowsInt8(const int8_t* table, const float* scales,
                  const float* query, float* out, int64_t row_begin,
                  int64_t row_end, int64_t d);

// Variant namespaces (both always compiled; tests compare them
// bitwise). Signatures mirror the dispatchers above.
namespace simd {
void GemmRowsAB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);
void GemmRowsAtB(const float* a, int64_t a_cols, int64_t col0,
                 const float* b, float* c, int64_t m, int64_t k, int64_t n);
void GemmRowsABt(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n);
void SpmmRows(const int64_t* row_ptr, const int64_t* col_idx,
              const float* values, const float* x, float* out,
              int64_t row_begin, int64_t row_end, int64_t d);
void AddInPlace(float* dst, const float* src, int64_t n);
void SubInPlace(float* dst, const float* src, int64_t n);
void MulInPlace(float* dst, const float* src, int64_t n);
void ScaleInPlace(float* dst, float s, int64_t n);
void BiasActForward(Act act, const float* x, const float* bias, float* y,
                    int64_t rows, int64_t cols);
void ActGradInPlace(Act act, float* g, const float* y, int64_t n);
void Fp32ToBf16(const float* src, uint16_t* dst, int64_t n);
void Bf16ToFp32(const uint16_t* src, float* dst, int64_t n);
void QuantizeInt8Rows(const float* src, int8_t* dst, float* scales,
                      int64_t rows, int64_t cols);
void DequantizeInt8Row(const int8_t* src, float scale, float* dst, int64_t n);
void GemvRowsFp32(const float* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d);
void GemvRowsBf16(const uint16_t* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d);
void GemvRowsInt8(const int8_t* table, const float* scales,
                  const float* query, float* out, int64_t row_begin,
                  int64_t row_end, int64_t d);
}  // namespace simd

namespace scalar {
void GemmRowsAB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);
void GemmRowsAtB(const float* a, int64_t a_cols, int64_t col0,
                 const float* b, float* c, int64_t m, int64_t k, int64_t n);
void GemmRowsABt(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n);
void SpmmRows(const int64_t* row_ptr, const int64_t* col_idx,
              const float* values, const float* x, float* out,
              int64_t row_begin, int64_t row_end, int64_t d);
void AddInPlace(float* dst, const float* src, int64_t n);
void SubInPlace(float* dst, const float* src, int64_t n);
void MulInPlace(float* dst, const float* src, int64_t n);
void ScaleInPlace(float* dst, float s, int64_t n);
void BiasActForward(Act act, const float* x, const float* bias, float* y,
                    int64_t rows, int64_t cols);
void ActGradInPlace(Act act, float* g, const float* y, int64_t n);
void Fp32ToBf16(const float* src, uint16_t* dst, int64_t n);
void Bf16ToFp32(const uint16_t* src, float* dst, int64_t n);
void QuantizeInt8Rows(const float* src, int8_t* dst, float* scales,
                      int64_t rows, int64_t cols);
void DequantizeInt8Row(const int8_t* src, float scale, float* dst, int64_t n);
void GemvRowsFp32(const float* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d);
void GemvRowsBf16(const uint16_t* table, const float* query, float* out,
                  int64_t row_begin, int64_t row_end, int64_t d);
void GemvRowsInt8(const int8_t* table, const float* scales,
                  const float* query, float* out, int64_t row_begin,
                  int64_t row_end, int64_t d);
}  // namespace scalar

}  // namespace kernels
}  // namespace mgbr

#endif  // MGBR_TENSOR_KERNELS_H_
