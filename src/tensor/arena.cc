#include "tensor/arena.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/metrics.h"

namespace mgbr {

namespace {

bool InitialArenaEnabled() {
  const char* env = std::getenv("MGBR_ARENA");
  if (env != nullptr && *env != '\0') {
    return !(env[0] == '0' && env[1] == '\0');
  }
  return true;
}

std::atomic<bool>& ArenaFlag() {
  static std::atomic<bool> flag{InitialArenaEnabled()};
  return flag;
}

#if MGBR_TELEMETRY
Gauge* BytesInUseGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("arena.bytes_in_use");
  return g;
}

Gauge* BytesCachedGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("arena.bytes_cached");
  return g;
}

Gauge* HighWaterGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("arena.high_water_bytes");
  return g;
}

Counter* HitsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("arena.hits");
  return c;
}

Counter* MissesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("arena.misses");
  return c;
}
#endif  // MGBR_TELEMETRY

}  // namespace

TensorArena& TensorArena::Global() {
  // Leaked on purpose: see class comment.
  static TensorArena* arena = new TensorArena();
  return *arena;
}

bool TensorArena::Enabled() {
  return ArenaFlag().load(std::memory_order_relaxed);
}

void TensorArena::SetEnabled(bool on) {
  ArenaFlag().store(on, std::memory_order_relaxed);
}

int TensorArena::BucketIndex(int64_t capacity) {
  int idx = 0;
  int64_t cap = kMinCapacity;
  while (cap < capacity && idx < kBuckets - 1) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

std::vector<float> TensorArena::Acquire(int64_t n) {
  if (n <= 0) return {};
  if (!Enabled()) {
    std::vector<float> buf(static_cast<size_t>(n), 0.0f);
    NoteAcquire(static_cast<int64_t>(buf.capacity()) * 4, /*hit=*/false);
    return buf;
  }
  const int idx = BucketIndex(n);
  const int64_t cap = kMinCapacity << idx;
  std::vector<float> buf;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& bucket = buckets_[idx];
    if (!bucket.empty()) {
      buf = std::move(bucket.back());
      bucket.pop_back();
      bytes_cached_ -= static_cast<int64_t>(buf.capacity()) * 4;
      hit = true;
    }
  }
  if (!hit) buf.reserve(static_cast<size_t>(cap));
  buf.clear();
  buf.resize(static_cast<size_t>(n), 0.0f);
  NoteAcquire(static_cast<int64_t>(buf.capacity()) * 4, hit);
  return buf;
}

std::vector<float> TensorArena::AcquireCopy(const float* src, int64_t n) {
  if (n <= 0) return {};
  if (!Enabled()) {
    std::vector<float> buf(src, src + n);
    NoteAcquire(static_cast<int64_t>(buf.capacity()) * 4, /*hit=*/false);
    return buf;
  }
  const int idx = BucketIndex(n);
  const int64_t cap = kMinCapacity << idx;
  std::vector<float> buf;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& bucket = buckets_[idx];
    if (!bucket.empty()) {
      buf = std::move(bucket.back());
      bucket.pop_back();
      bytes_cached_ -= static_cast<int64_t>(buf.capacity()) * 4;
      hit = true;
    }
  }
  if (!hit) buf.reserve(static_cast<size_t>(cap));
  buf.assign(src, src + n);
  NoteAcquire(static_cast<int64_t>(buf.capacity()) * 4, hit);
  return buf;
}

void TensorArena::Release(std::vector<float>&& buf) {
  const int64_t cap_bytes = static_cast<int64_t>(buf.capacity()) * 4;
  if (cap_bytes == 0) return;
  NoteRelease(cap_bytes);
  if (!Enabled()) return;  // buf destroyed on scope exit
  const int idx = BucketIndex(static_cast<int64_t>(buf.capacity()));
  // Only park exact bucket-sized buffers; anything else (e.g. acquired
  // while the arena was disabled) would make capacity accounting lie.
  if (static_cast<int64_t>(buf.capacity()) != (kMinCapacity << idx)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_cached_ + cap_bytes > kMaxCachedBytes) return;
  bytes_cached_ += cap_bytes;
  buckets_[idx].push_back(std::move(buf));
#if MGBR_TELEMETRY
  MGBR_GAUGE_SET(BytesCachedGauge(), static_cast<double>(bytes_cached_));
#endif
}

TensorArena::Stats TensorArena::GetStats() const {
  Stats s;
  s.bytes_in_use = bytes_in_use_.load(std::memory_order_relaxed);
  s.high_water_bytes = high_water_bytes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.bytes_cached = bytes_cached_;
  return s;
}

void TensorArena::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& bucket : buckets_) bucket.clear();
  bytes_cached_ = 0;
#if MGBR_TELEMETRY
  MGBR_GAUGE_SET(BytesCachedGauge(), 0.0);
#endif
}

void TensorArena::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  high_water_bytes_.store(bytes_in_use_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

void TensorArena::NoteAcquire(int64_t capacity_bytes, bool hit) {
  const int64_t in_use =
      bytes_in_use_.fetch_add(capacity_bytes, std::memory_order_relaxed) +
      capacity_bytes;
  int64_t high = high_water_bytes_.load(std::memory_order_relaxed);
  while (in_use > high && !high_water_bytes_.compare_exchange_weak(
                              high, in_use, std::memory_order_relaxed)) {
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
#if MGBR_TELEMETRY
  MGBR_COUNTER_ADD(hit ? HitsCounter() : MissesCounter(), 1);
  MGBR_GAUGE_SET(BytesInUseGauge(), static_cast<double>(in_use));
  MGBR_GAUGE_SET(HighWaterGauge(),
                 static_cast<double>(
                     high_water_bytes_.load(std::memory_order_relaxed)));
#endif
}

void TensorArena::NoteRelease(int64_t capacity_bytes) {
  const int64_t in_use =
      bytes_in_use_.fetch_sub(capacity_bytes, std::memory_order_relaxed) -
      capacity_bytes;
#if MGBR_TELEMETRY
  MGBR_GAUGE_SET(BytesInUseGauge(), static_cast<double>(in_use));
#else
  (void)in_use;
#endif
}

}  // namespace mgbr
