#ifndef MGBR_TENSOR_QUANT_H_
#define MGBR_TENSOR_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mgbr {

/// Storage format for a quantized embedding table. kFp32 keeps the
/// table in fp32 (useful as the like-for-like timing baseline in
/// bench_quant); kBf16 halves it; kInt8 quarters it with one fp32
/// scale per row (symmetric, scale = maxabs / 127).
enum class QuantMode : int { kFp32 = 0, kBf16 = 1, kInt8 = 2 };

/// "fp32" | "bf16" | "int8".
const char* QuantModeName(QuantMode mode);

/// Parses the names accepted by serving/bench flags ("off" and "fp32"
/// both mean kFp32). Returns false on anything else.
bool ParseQuantMode(const std::string& text, QuantMode* mode);

/// An immutable quantized copy of a row-major n x d fp32 block, plus
/// the fp32-compute GEMV over it.
///
/// Determinism contract (docs/quantization.md): Build is elementwise
/// and exactly specified (bf16 RNE, int8 nearest-even codes), so the
/// stored bytes are identical across simd/scalar kernel variants and
/// thread counts; ScoreAll partitions rows with ParallelFor into
/// disjoint outputs and each row's dot uses the fixed-lane reduction
/// from kernels_impl.inc, so scores are bit-identical for every thread
/// count and simd setting.
class QuantizedTable {
 public:
  QuantizedTable() = default;

  /// Quantizes `data` (n x d row-major) into `mode` storage. Replaces
  /// any previous contents.
  void Build(const float* data, int64_t n, int64_t d, QuantMode mode);

  bool empty() const { return n_ == 0; }
  int64_t n() const { return n_; }
  int64_t d() const { return d_; }
  QuantMode mode() const { return mode_; }

  /// out[r] = dot(query, decoded row r) for every row; out must hold n
  /// floats. query must hold d floats.
  void ScoreAll(const float* query, float* out) const;

  /// out[i] = dot(query, decoded row ids[i]) for i in [0, m). Rows are
  /// scored one GEMV row at a time, so a candidate subset scores
  /// bitwise-equal to the same rows of ScoreAll.
  void ScoreRows(const float* query, const int64_t* ids, int64_t m,
                 float* out) const;

  /// The exact fp32 values ScoreAll dots against (row r into out[0..d)).
  void DecodeRow(int64_t r, float* out) const;

  /// Quantized payload bytes: codes plus int8 scales. Excludes the
  /// std::vector bookkeeping.
  int64_t storage_bytes() const;

  /// What the same block costs in fp32 (n * d * 4).
  int64_t fp32_bytes() const { return n_ * d_ * 4; }

  /// CRC32 over shape, mode and payload — distinct table contents give
  /// distinct fingerprints with overwhelming probability, which the
  /// hot-swap staleness test keys on.
  uint32_t Fingerprint() const;

 private:
  QuantMode mode_ = QuantMode::kFp32;
  int64_t n_ = 0;
  int64_t d_ = 0;
  std::vector<float> fp32_;      // kFp32
  std::vector<uint16_t> bf16_;   // kBf16
  std::vector<int8_t> int8_;     // kInt8 codes
  std::vector<float> scales_;    // kInt8 per-row scales
};

}  // namespace mgbr

#endif  // MGBR_TENSOR_QUANT_H_
