#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/parallel.h"
#include "tensor/kernels.h"

namespace mgbr {

namespace {
// Below this size the parallel fork/join overhead exceeds the loop.
constexpr int64_t kElemGrain = 1 << 14;
}  // namespace

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(1, 1, value); }

Tensor Tensor::FromVector(int64_t rows, int64_t cols,
                          const std::vector<float>& values) {
  MGBR_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AccumulateInPlace(const Tensor& other) {
  MGBR_CHECK(same_shape(other));
  const float* src = other.data();
  float* dst = data();
  ParallelFor(0, numel(), kElemGrain, [dst, src](int64_t lo, int64_t hi) {
    kernels::AddInPlace(dst + lo, src + lo, hi - lo);
  });
}

void Tensor::ScaleInPlace(float s) {
  float* dst = data();
  ParallelFor(0, numel(), kElemGrain, [dst, s](int64_t lo, int64_t hi) {
    kernels::ScaleInPlace(dst + lo, s, hi - lo);
  });
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double Tensor::AbsMax() const {
  double m = 0.0;
  for (float v : data_) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

std::string Tensor::ToString() const {
  std::ostringstream oss;
  oss << "Tensor(" << rows_ << "x" << cols_ << ")[";
  int64_t shown = std::min<int64_t>(numel(), 8);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) oss << ", ";
    oss << data_[static_cast<size_t>(i)];
  }
  if (numel() > shown) oss << ", ...";
  oss << "]";
  return oss.str();
}

bool AllClose(const Tensor& a, const Tensor& b, double atol) {
  if (!a.same_shape(b)) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]) > atol) {
      return false;
    }
  }
  return true;
}

}  // namespace mgbr
