#include "train/trainer.h"

#include <algorithm>
#include <atomic>
#include <csignal>

#include "common/checksum.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/losses.h"
#include "train/checkpoint.h"
#include "tensor/ops.h"

namespace mgbr {

namespace {

Counter* SamplerDrawsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("sampler.draws");
  return c;
}

Counter* SamplerRejectionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("sampler.rejections");
  return c;
}

#if MGBR_TELEMETRY
Gauge* LearningRateGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("trainer.learning_rate");
  return g;
}
#endif  // MGBR_TELEMETRY

std::atomic<bool> g_stop_requested{false};

void MgbrStopSignalHandler(int /*signum*/) {
  // Only async-signal-safe work here: flip the flag, let the training
  // loop notice it at the next epoch boundary.
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallStopSignalHandlers() {
  std::signal(SIGINT, MgbrStopSignalHandler);
  std::signal(SIGTERM, MgbrStopSignalHandler);
}

bool StopRequested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

void RequestStop() { g_stop_requested.store(true, std::memory_order_relaxed); }

void ClearStopRequest() {
  g_stop_requested.store(false, std::memory_order_relaxed);
}

Trainer::Trainer(RecModel* model, const TrainingSampler* sampler,
                 TrainConfig config)
    : model_(model),
      mgbr_(dynamic_cast<MgbrModel*>(model)),
      sampler_(sampler),
      config_(config),
      rng_(config.seed) {
  MGBR_CHECK(model != nullptr);
  MGBR_CHECK(sampler != nullptr);
  MGBR_CHECK_GE(config_.sampler_streams, 0);
  // Stream s gets its own ForStream lane off the base seed (offset past
  // the lanes the samplers themselves derive), so the set is stable for
  // a given (seed, sampler_streams) regardless of thread count.
  sampler_streams_.reserve(static_cast<size_t>(config_.sampler_streams));
  for (int s = 0; s < config_.sampler_streams; ++s) {
    sampler_streams_.push_back(
        Rng::ForStream(config_.seed, 1000 + static_cast<uint64_t>(s)));
  }
  optimizer_ = std::make_unique<Adam>(model_->Parameters(),
                                      config_.learning_rate, 0.9f, 0.999f,
                                      1e-8f, config_.weight_decay);
}

EpochStats Trainer::RunEpoch() {
  // The epoch span is the single timing source of truth: its duration
  // becomes EpochStats.seconds, the telemetry record, and (when
  // tracing) the Chrome trace event — they can never disagree.
  TimedSpan epoch_span("trainer.epoch", "trainer");
  EpochStats stats;

  // Sampler-effort deltas for the telemetry record (counters are
  // process-global; only the within-epoch growth belongs to us).
  const int64_t draws_before = SamplerDrawsCounter()->Value();
  const int64_t rejections_before = SamplerRejectionsCounter()->Value();

  const bool use_aux = mgbr_ != nullptr && mgbr_->config().use_aux_losses;
  const float beta = mgbr_ != nullptr ? mgbr_->config().beta : config_.beta;
  const float beta_a = mgbr_ != nullptr ? mgbr_->config().beta_a : 0.0f;
  const float beta_b = mgbr_ != nullptr ? mgbr_->config().beta_b : 0.0f;

  std::vector<Rng>* streams =
      sampler_streams_.empty() ? nullptr : &sampler_streams_;
  std::vector<TaskABatch> batches_a;
  std::vector<TaskBBatch> batches_b;
  std::vector<AuxBatch> batches_aux;
  {
    MGBR_TRACE_SPAN("trainer.sample_epoch", "trainer");
    batches_a = sampler_->EpochBatchesA(config_.batch_size,
                                        config_.negs_per_pos, &rng_, streams);
    batches_b = sampler_->EpochBatchesB(config_.batch_size,
                                        config_.negs_per_pos, &rng_, streams);
    if (use_aux) {
      batches_aux = sampler_->EpochAuxBatches(config_.aux_batch_size,
                                              mgbr_->config().aux_negatives,
                                              &rng_, streams);
    }
  }

  const size_t steps = std::max(batches_a.size(), batches_b.size());
  MGBR_CHECK_GT(steps, 0u);
  for (size_t step = 0; step < steps; ++step) {
    MGBR_TRACE_SPAN("trainer.step", "trainer");
    // Crash-recovery testing hook: MGBR_FAULT="kill@trainer.step:N"
    // terminates the process at the N-th step (common/fault.h).
    fault::KillPoint("trainer.step");
    {
      MGBR_TRACE_SPAN("trainer.refresh", "trainer");
      model_->Refresh();
    }

    // When the shorter task's batch list is exhausted mid-epoch,
    // regenerate it so revisited positives get FRESH negative samples
    // instead of replaying stale ones.
    if (!batches_a.empty() && step > 0 && step % batches_a.size() == 0 &&
        batches_a.size() < steps) {
      batches_a = sampler_->EpochBatchesA(
          config_.batch_size, config_.negs_per_pos, &rng_, streams);
    }
    if (!batches_b.empty() && step > 0 && step % batches_b.size() == 0 &&
        batches_b.size() < steps) {
      batches_b = sampler_->EpochBatchesB(
          config_.batch_size, config_.negs_per_pos, &rng_, streams);
    }
    if (use_aux && !batches_aux.empty() && step > 0 &&
        step % batches_aux.size() == 0 && batches_aux.size() < steps) {
      batches_aux = sampler_->EpochAuxBatches(config_.aux_batch_size,
                                              mgbr_->config().aux_negatives,
                                              &rng_, streams);
    }

    Var loss;
    if (!batches_a.empty()) {
      MGBR_TRACE_SPAN("trainer.loss_a", "trainer");
      const TaskABatch& ba = batches_a[step % batches_a.size()];
      Var la = TaskALoss(model_, ba);
      stats.loss_a += la.value().item();
      loss = la;
    }
    if (!batches_b.empty()) {
      MGBR_TRACE_SPAN("trainer.loss_b", "trainer");
      const TaskBBatch& bb = batches_b[step % batches_b.size()];
      Var lb = TaskBLoss(model_, bb);
      stats.loss_b += lb.value().item();
      Var weighted = MulScalar(lb, beta);
      loss = loss.defined() ? Add(loss, weighted) : weighted;
    }
    if (use_aux && !batches_aux.empty()) {
      MGBR_TRACE_SPAN("trainer.aux_loss", "trainer");
      const AuxBatch& bx = batches_aux[step % batches_aux.size()];
      Var laa = AuxLossA(mgbr_, bx);
      Var lab = AuxLossB(mgbr_, bx);
      stats.aux_a += laa.value().item();
      stats.aux_b += lab.value().item();
      loss = Add(loss, Add(MulScalar(laa, beta_a), MulScalar(lab, beta_b)));
    }

    optimizer_->ZeroGrad();
    {
      MGBR_TRACE_SPAN("trainer.backward", "trainer");
      loss.Backward();
    }
    // The global grad norm falls out of clipping; when clipping is off
    // it is only worth a full pass over the gradients if a telemetry
    // sink wants it.
    if (config_.clip_grad_norm > 0.0f || telemetry_ != nullptr) {
      MGBR_TRACE_SPAN("trainer.clip_grad", "trainer");
      const double norm = ClipGradNorm(optimizer_->params_mutable(),
                                       config_.clip_grad_norm);
      stats.grad_norm_pre += norm;
      stats.grad_norm_post +=
          (config_.clip_grad_norm > 0.0f &&
           norm > static_cast<double>(config_.clip_grad_norm))
              ? static_cast<double>(config_.clip_grad_norm)
              : norm;
    }
    {
      MGBR_TRACE_SPAN("trainer.optim_step", "trainer");
      optimizer_->Step();
    }
    ++stats.steps;
  }

  stats.learning_rate = optimizer_->learning_rate();
#if MGBR_TELEMETRY
  MGBR_GAUGE_SET(LearningRateGauge(),
                 static_cast<double>(stats.learning_rate));
#endif
  stats.seconds = epoch_span.Finish();
  ++state_.epochs_run;

  if (telemetry_ != nullptr) {
    const double inv = 1.0 / static_cast<double>(stats.steps);
    EpochTelemetry record;
    record.model = model_->name();
    record.epoch = state_.epochs_run;
    record.steps = stats.steps;
    record.loss_a = stats.loss_a * inv;
    record.loss_b = stats.loss_b * inv;
    record.aux_a = stats.aux_a * inv;
    record.aux_b = stats.aux_b * inv;
    record.total_loss = stats.TotalLoss();
    record.grad_norm_pre = stats.grad_norm_pre * inv;
    record.grad_norm_post = stats.grad_norm_post * inv;
    record.learning_rate = stats.learning_rate;
    record.sampler_draws = SamplerDrawsCounter()->Value() - draws_before;
    record.sampler_rejections =
        SamplerRejectionsCounter()->Value() - rejections_before;
    record.sampler_rejection_rate =
        record.sampler_draws > 0
            ? static_cast<double>(record.sampler_rejections) /
                  static_cast<double>(record.sampler_draws)
            : 0.0;
    record.seconds = stats.seconds;
    telemetry_->RecordEpoch(record);
  }
  return stats;
}

std::vector<EpochStats> Trainer::Train(int64_t epochs) {
  if (epochs <= 0) epochs = config_.epochs;
  std::vector<EpochStats> history;
  const int64_t decay_epoch = static_cast<int64_t>(
      static_cast<float>(epochs) * config_.lr_decay_after);
  // The epoch cursor is absolute (state_.epochs_run), so a resumed
  // trainer picks up exactly where the checkpoint left off: the decay
  // step fires at the same absolute epoch, checkpoints land on the same
  // cadence, and the drawn random stream continues unbroken.
  for (int64_t e = state_.epochs_run; e < epochs; ++e) {
    if (config_.lr_decay_factor > 0.0f && config_.lr_decay_factor < 1.0f &&
        e == decay_epoch && decay_epoch > 0) {
      optimizer_->set_learning_rate(optimizer_->learning_rate() *
                                    config_.lr_decay_factor);
    }
    EpochStats stats = RunEpoch();
    if (config_.verbose) {
      MGBR_LOG_INFO(model_->name(), " epoch ", e + 1, "/", epochs,
                    " loss=", FormatFloat(stats.TotalLoss(), 4),
                    " (A=", FormatFloat(stats.loss_a / stats.steps, 4),
                    " B=", FormatFloat(stats.loss_b / stats.steps, 4),
                    ") ", FormatFloat(stats.seconds, 2), "s");
    }
    history.push_back(stats);
    const bool stopping = StopRequested();
    const Status saved = MaybeCheckpoint(stopping || e + 1 >= epochs);
    if (!saved.ok()) {
      MGBR_LOG_WARNING("checkpoint failed: ", saved.ToString());
    }
    if (stopping) {
      MGBR_LOG_WARNING("stop requested; exiting after epoch ",
                       state_.epochs_run, " (checkpoint ",
                       config_.checkpoint_dir.empty() ? "disabled"
                                                      : "written",
                       ")");
      break;
    }
  }
  // The final checkpoint must be durable before Train() returns: in
  // async mode the last Save() may still be in flight here.
  const Status flushed = FlushCheckpoints();
  if (!flushed.ok()) {
    MGBR_LOG_WARNING("final checkpoint write failed: ", flushed.ToString());
  }
  return history;
}

uint64_t Trainer::ConfigFingerprint() const {
  const std::string name = model_->name();
  uint64_t h = Fnv1a64(name.data(), name.size());
  for (const Var& p : optimizer_->params()) {
    h = Fnv1a64Mix(p.value().rows(), h);
    h = Fnv1a64Mix(p.value().cols(), h);
  }
  if (mgbr_ != nullptr) h = mgbr_->config().Fingerprint(h);
  return h;
}

CheckpointManager* Trainer::Manager() {
  if (ckpt_manager_ == nullptr) {
    ckpt_manager_ = std::make_unique<CheckpointManager>(
        config_.checkpoint_dir, config_.checkpoint_keep,
        config_.async_checkpoints);
  }
  return ckpt_manager_.get();
}

Status Trainer::FlushCheckpoints() {
  if (ckpt_manager_ == nullptr) return Status::OK();
  return ckpt_manager_->WaitForPending();
}

Result<int64_t> Trainer::TryResume() {
  if (config_.checkpoint_dir.empty()) return int64_t{0};
  CheckpointManager& manager = *Manager();
  CheckpointReadRequest request;
  // The optimizer's Vars are shared handles onto the model's parameters
  // (Trainer's constructor passes model->Parameters()), so restoring
  // through them updates the model in place.
  request.params = &optimizer_->params_mutable();
  request.optimizer = optimizer_.get();
  request.rng = &rng_;
  request.rng_streams = sampler_streams_.empty() ? nullptr : &sampler_streams_;
  request.trainer = &state_;
  request.expected_fingerprint = ConfigFingerprint();
  int64_t epoch = 0;
  const Status status = manager.RestoreLatest(request, &epoch);
  if (status.code() == StatusCode::kNotFound) return int64_t{0};
  if (!status.ok()) return status;
  model_->Refresh();
  MGBR_LOG_INFO("resumed from ", manager.PathFor(epoch), " (",
                state_.epochs_run, " epoch(s) already run)");
  return state_.epochs_run;
}

Status Trainer::MaybeCheckpoint(bool force) {
  if (config_.checkpoint_dir.empty()) return Status::OK();
  if (!force && (config_.checkpoint_every <= 0 ||
                 state_.epochs_run % config_.checkpoint_every != 0)) {
    return Status::OK();
  }
  CheckpointManager& manager = *Manager();
  CheckpointWriteRequest request;
  request.params = &optimizer_->params();
  request.optimizer = optimizer_.get();
  request.rng = &rng_;
  request.rng_streams = sampler_streams_.empty() ? nullptr : &sampler_streams_;
  request.trainer = &state_;
  request.fingerprint = ConfigFingerprint();
  return manager.Save(request, state_.epochs_run);
}

ValidatedTrainResult TrainWithEarlyStopping(
    Trainer* trainer, RecModel* model,
    const std::function<double()>& validate, int64_t max_epochs,
    int64_t patience, const std::string& checkpoint_path) {
  MGBR_CHECK(trainer != nullptr);
  MGBR_CHECK(model != nullptr);
  MGBR_CHECK_GE(patience, 1);
  ValidatedTrainResult result;
  // The scoreboard lives in TrainerState so it rides along in periodic
  // checkpoints; a resumed trainer (TryResume) re-enters this loop with
  // its best-so-far and patience budget intact.
  TrainerState* state = trainer->mutable_state();
  result.best_metric = state->best_metric;
  result.best_epoch = state->best_epoch;
  for (int64_t epoch = state->epochs_run; epoch < max_epochs; ++epoch) {
    result.history.push_back(trainer->RunEpoch());
    const double metric = validate();
    if (trainer->telemetry() != nullptr) {
      trainer->telemetry()->AnnotateLastEpoch({{"val_metric", metric}});
    }
    bool stop = StopRequested();
    if (metric > state->best_metric) {
      state->best_metric = metric;
      state->best_epoch = epoch;
      state->since_best = 0;
      result.best_metric = metric;
      result.best_epoch = epoch;
      if (!checkpoint_path.empty()) {
        auto params = model->Parameters();
        Status s = SaveParameters(params, checkpoint_path);
        if (!s.ok()) {
          MGBR_LOG_WARNING("best-epoch checkpoint failed: ", s.ToString());
        }
      }
    } else if (++state->since_best >= patience) {
      result.stopped_early = true;
      stop = true;
    }
    const Status saved =
        trainer->MaybeCheckpoint(stop || epoch + 1 >= max_epochs);
    if (!saved.ok()) {
      MGBR_LOG_WARNING("checkpoint failed: ", saved.ToString());
    }
    if (stop) break;
  }
  const Status flushed = trainer->FlushCheckpoints();
  if (!flushed.ok()) {
    MGBR_LOG_WARNING("final checkpoint write failed: ", flushed.ToString());
  }
  return result;
}

bool EarlyStopping::ShouldStop(double metric) {
  if (metric > best_) {
    best_ = metric;
    since_best_ = 0;
    return false;
  }
  ++since_best_;
  return since_best_ >= patience_;
}

}  // namespace mgbr
