#ifndef MGBR_TRAIN_CHECKPOINT_H_
#define MGBR_TRAIN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/variable.h"

namespace mgbr {

/// Writes all parameter tensors to `path` in a small binary format
/// (magic, count, then per-tensor shape + float32 payload). Parameter
/// ORDER is the contract: save and load must use the same
/// model->Parameters() ordering.
Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path);

/// Restores parameter values in place. Fails (without partial writes to
/// the model) if the count or any shape mismatches.
Status LoadParameters(const std::string& path, std::vector<Var>* params);

}  // namespace mgbr

#endif  // MGBR_TRAIN_CHECKPOINT_H_
