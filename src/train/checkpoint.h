#ifndef MGBR_TRAIN_CHECKPOINT_H_
#define MGBR_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/optim.h"
#include "tensor/variable.h"

namespace mgbr {

/// Crash-safe checkpointing (format v2). See docs/robustness.md.
///
/// A v2 checkpoint is a sectioned binary file:
///
///   magic "MGBRCKP2" | u32 version=2 | u32 n_sections
///   per section: u32 tag | u32 crc32(payload) | u64 payload_bytes
///                | payload
///
/// Sections (all optional except params):
///   CFG1  model/config fingerprint (u64)
///   PAR1  parameter tensors: u64 count, then {i64 rows, i64 cols, f32[]}
///   ADM1  Adam state: i64 t, f32 lr, u64 count,
///         then {i64 rows, i64 cols, f32 m[], f32 v[]}
///   RNG1  RNG streams: u64 n, then {u64 s[4], u8 has_cached, f64 cached}
///   TRN1  trainer state: i64 epochs_run, f64 best_metric,
///         i64 best_epoch, i64 since_best
///
/// Durability: files are written to `<path>.tmp`, fsync'd, then
/// atomically renamed over `<path>` (with a parent-directory fsync), so
/// a reader never observes a half-written checkpoint under its final
/// name. Every section carries a CRC32, so torn writes and bit flips
/// are detected at load time instead of silently corrupting a model.
///
/// The legacy v1 format ("MGBRCKP1": params only, no checksums) is
/// still readable through LoadParameters / LoadCheckpoint.

/// Trainer bookkeeping that must survive a restart for a resumed run to
/// continue exactly where the original left off (epoch cursor plus the
/// early-stopping scoreboard).
struct TrainerState {
  int64_t epochs_run = 0;
  double best_metric = -1e300;
  int64_t best_epoch = -1;
  int64_t since_best = 0;
};

/// What to persist. `params` is required; every other pointer is
/// optional and simply omits its section when null.
struct CheckpointWriteRequest {
  const std::vector<Var>* params = nullptr;
  const Adam* optimizer = nullptr;
  const Rng* rng = nullptr;
  /// Optional extra RNG streams (e.g. the trainer's persistent sampler
  /// streams) appended after `rng` in the RNG1 section. Ignored when
  /// `rng` is null.
  const std::vector<Rng>* rng_streams = nullptr;
  const TrainerState* trainer = nullptr;
  /// Stored in the CFG1 section when non-zero (see
  /// Trainer::ConfigFingerprint / MgbrConfig::Fingerprint).
  uint64_t fingerprint = 0;
};

/// Where to restore. `params` is required and must match the file's
/// tensor count/shapes; optional pointers demand their section (a file
/// without it fails with NotFound). Restoration is all-or-nothing:
/// every section is parsed and validated before the first byte of
/// model/optimizer/RNG state is mutated.
struct CheckpointReadRequest {
  std::vector<Var>* params = nullptr;
  Adam* optimizer = nullptr;
  Rng* rng = nullptr;
  /// When non-null, the RNG1 section must carry exactly
  /// 1 + rng_streams->size() streams; the extras are restored into
  /// *rng_streams in order. When null, the file must carry exactly one
  /// stream (the legacy layout). Ignored when `rng` is null.
  std::vector<Rng>* rng_streams = nullptr;
  TrainerState* trainer = nullptr;
  /// When non-zero, the file's CFG1 fingerprint must equal it.
  uint64_t expected_fingerprint = 0;
};

/// Writes a v2 checkpoint atomically (temp + fsync + rename).
/// Equivalent to SerializeCheckpoint + WriteCheckpointBytes.
Status SaveCheckpoint(const CheckpointWriteRequest& request,
                      const std::string& path);

/// Builds the complete v2 file image (magic, header, CRC'd sections)
/// into `*out` without touching the filesystem. Splitting serialization
/// from I/O lets an async writer snapshot training state on the train
/// thread — while the parameters are guaranteed quiescent — and pay the
/// fsync latency elsewhere.
Status SerializeCheckpoint(const CheckpointWriteRequest& request,
                           std::string* out);

/// Durably lands pre-serialized checkpoint bytes at `path` via the
/// temp + fsync + atomic-rename protocol (including the crash-safety
/// kill points exercised by the fault-injection tests). The bytes are
/// written verbatim, so the produced file is byte-identical regardless
/// of which thread calls this.
Status WriteCheckpointBytes(const std::string& bytes,
                            const std::string& path);

/// Loads and verifies a checkpoint (v2 CRC-checked, or legacy v1 when
/// only params are requested). Corruption — truncation, CRC mismatch,
/// impossible counts/shapes — yields an error and leaves every target
/// untouched.
Status LoadCheckpoint(const std::string& path,
                      const CheckpointReadRequest& request);

/// Params-only convenience wrappers (the pre-v2 API). SaveParameters
/// now writes an atomic, CRC-protected v2 file; LoadParameters reads
/// both v2 and legacy v1 files.
Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path);
Status LoadParameters(const std::string& path, std::vector<Var>* params);

/// Rotating checkpoint directory with corruption fall-back.
///
/// Files are `<dir>/ckpt-NNNNNN.mgbr` (NNNNNN = epoch). Save() writes
/// atomically, prunes to the newest `keep_last` files, and clears stale
/// temp files from interrupted earlier runs. RestoreLatest() walks the
/// epochs newest-first and returns the first checkpoint that fully
/// verifies, counting corrupt files (checkpoint.corrupt_detected) and
/// fall-backs (checkpoint.fallbacks) along the way.
///
/// Async mode (`async = true`): Save() serializes the request on the
/// calling thread — capturing the exact training state at the call —
/// then hands the bytes to a background writer that performs the
/// temp + fsync + rename and rotation, so the train loop never blocks
/// on disk. At most one write is in flight: the next Save() (and
/// WaitForPending()) first joins the previous writer and surfaces its
/// status, so no write error is ever silently dropped. The produced
/// files are byte-identical to sync mode. The destructor joins any
/// in-flight write, so a manager never outlives its writer thread.
/// All methods must be called from one thread (the train loop).
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir, int keep_last = 3,
                             bool async = false);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// `<dir>/ckpt-NNNNNN.mgbr` for the given epoch.
  std::string PathFor(int64_t epoch) const;

  /// Atomically writes the checkpoint for `epoch`, then rotates. In
  /// async mode the serialized bytes are handed to the writer thread
  /// and the returned status covers serialization plus the PREVIOUS
  /// pending write (use WaitForPending() to collect the last one).
  Status Save(const CheckpointWriteRequest& request, int64_t epoch);

  /// Joins the in-flight async write, if any, and returns its status
  /// (OK when idle or in sync mode). Call before reading checkpoints
  /// back or at end of training to ensure the last write is durable.
  Status WaitForPending();

  /// Restores the newest checkpoint that verifies; `*epoch_out`
  /// receives its epoch. NotFound when the directory holds no valid
  /// checkpoint.
  Status RestoreLatest(const CheckpointReadRequest& request,
                       int64_t* epoch_out);

  /// Epochs with a checkpoint file present, ascending.
  std::vector<int64_t> ListEpochs() const;

  const std::string& dir() const { return dir_; }
  int keep_last() const { return keep_last_; }
  bool async() const { return async_; }

 private:
  /// Write + rotate for pre-serialized bytes (the writer-thread body;
  /// also the tail of the sync path, keeping the two modes identical).
  Status WriteAndRotate(const std::string& bytes, int64_t epoch);

  std::string dir_;
  int keep_last_;
  bool async_;
  /// In-flight async writer. Joined (and its status collected) before
  /// the next write starts and in the destructor. `pending_status_` is
  /// written by the writer thread and read only after join(), which
  /// provides the necessary synchronization.
  std::thread writer_;
  Status pending_status_;
};

}  // namespace mgbr

#endif  // MGBR_TRAIN_CHECKPOINT_H_
