#include "train/checkpoint.h"

#include <cstdint>
#include <fstream>

#include "common/string_util.h"

namespace mgbr {
namespace {

constexpr char kMagic[8] = {'M', 'G', 'B', 'R', 'C', 'K', 'P', '1'};

}  // namespace

Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError(StrCat("cannot open for writing: ", path));
  }
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Var& p : params) {
    if (!p.defined()) {
      return Status::InvalidArgument("undefined Var in parameter list");
    }
    const int64_t rows = p.value().rows();
    const int64_t cols = p.value().cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.value().numel() *
                                           sizeof(float)));
  }
  if (!out.good()) {
    return Status::IoError(StrCat("write failed: ", path));
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path, std::vector<Var>* params) {
  if (params == nullptr) {
    return Status::InvalidArgument("params must not be null");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError(StrCat("cannot open for reading: ", path));
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string(magic, sizeof(magic)) !=
                        std::string(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(StrCat("bad checkpoint magic in ", path));
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || count != params->size()) {
    return Status::InvalidArgument(
        StrCat("parameter count mismatch: file has ", count, ", model has ",
               params->size()));
  }

  // Stage into temporaries first so a corrupt file cannot leave the
  // model half-loaded.
  std::vector<Tensor> staged;
  staged.reserve(params->size());
  for (size_t idx = 0; idx < params->size(); ++idx) {
    int64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    const Var& p = (*params)[idx];
    if (!in.good() || rows != p.value().rows() || cols != p.value().cols()) {
      return Status::InvalidArgument(
          StrCat("shape mismatch at parameter ", idx, ": file ", rows, "x",
                 cols, ", model ", p.value().rows(), "x", p.value().cols()));
    }
    Tensor t(rows, cols);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in.good()) {
      return Status::IoError(StrCat("truncated checkpoint: ", path));
    }
    staged.push_back(std::move(t));
  }
  for (size_t idx = 0; idx < params->size(); ++idx) {
    (*params)[idx].mutable_value() = std::move(staged[idx]);
  }
  return Status::OK();
}

}  // namespace mgbr
