#include "train/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/checksum.h"
#include "common/fault.h"
#include "common/io_file.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace mgbr {
namespace {

constexpr char kMagicV1[8] = {'M', 'G', 'B', 'R', 'C', 'K', 'P', '1'};
constexpr char kMagicV2[8] = {'M', 'G', 'B', 'R', 'C', 'K', 'P', '2'};
constexpr uint32_t kFormatVersion = 2;
// Far above any conceivable section count; rejects garbage headers
// before they drive an allocation.
constexpr uint32_t kMaxSections = 64;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr uint32_t kTagConfig = FourCc('C', 'F', 'G', '1');
constexpr uint32_t kTagParams = FourCc('P', 'A', 'R', '1');
constexpr uint32_t kTagAdam = FourCc('A', 'D', 'M', '1');
constexpr uint32_t kTagRng = FourCc('R', 'N', 'G', '1');
constexpr uint32_t kTagTrainer = FourCc('T', 'R', 'N', '1');

Counter* SavesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("checkpoint.saves");
  return c;
}

Counter* LoadsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("checkpoint.loads");
  return c;
}

Counter* CorruptCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("checkpoint.corrupt_detected");
  return c;
}

Counter* FallbacksCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("checkpoint.fallbacks");
  return c;
}

// Corruption — as opposed to a structurally valid file that belongs to
// a different model — is surfaced as IoError and counted.
Status Corrupt(const std::string& path, const std::string& detail) {
  MGBR_COUNTER_ADD(CorruptCounter(), 1);
  return Status::IoError(StrCat("corrupt checkpoint ", path, ": ", detail));
}

// ---------------------------------------------------------------------------
// Little serialization helpers over an in-memory buffer. Everything is
// assembled (and parsed) in memory so the file itself is produced by a
// single io::File::Write — one fault-injection "write op" per save.
// ---------------------------------------------------------------------------

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n);
}

void AppendSection(std::string* out, uint32_t tag,
                   const std::string& payload) {
  AppendPod(out, tag);
  AppendPod(out, Crc32(payload.data(), payload.size()));
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  out->append(payload);
}

/// Bounds-checked forward-only reader over a byte buffer.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool ReadPod(T* out) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool Skip(size_t n) {
    if (size_ - pos_ < n) return false;
    pos_ += n;
    return true;
  }

  const char* head() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

struct Section {
  uint32_t tag = 0;
  const char* data = nullptr;
  size_t size = 0;
};

const Section* FindSection(const std::vector<Section>& sections,
                           uint32_t tag) {
  for (const Section& s : sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Section payload builders.
// ---------------------------------------------------------------------------

Status BuildParamsPayload(const std::vector<Var>& params, std::string* out) {
  AppendPod(out, static_cast<uint64_t>(params.size()));
  for (const Var& p : params) {
    if (!p.defined()) {
      return Status::InvalidArgument("undefined Var in parameter list");
    }
    AppendPod(out, p.value().rows());
    AppendPod(out, p.value().cols());
    AppendBytes(out, p.value().data(),
                static_cast<size_t>(p.value().numel()) * sizeof(float));
  }
  return Status::OK();
}

void BuildAdamPayload(const Adam& optimizer, std::string* out) {
  AppendPod(out, optimizer.step_count());
  AppendPod(out, optimizer.learning_rate());
  const std::vector<Tensor>& m = optimizer.first_moments();
  const std::vector<Tensor>& v = optimizer.second_moments();
  AppendPod(out, static_cast<uint64_t>(m.size()));
  for (size_t i = 0; i < m.size(); ++i) {
    AppendPod(out, m[i].rows());
    AppendPod(out, m[i].cols());
    AppendBytes(out, m[i].data(),
                static_cast<size_t>(m[i].numel()) * sizeof(float));
    AppendBytes(out, v[i].data(),
                static_cast<size_t>(v[i].numel()) * sizeof(float));
  }
}

void AppendRngState(const RngState& state, std::string* out) {
  for (uint64_t word : state.s) AppendPod(out, word);
  AppendPod(out, static_cast<uint8_t>(state.has_cached_gaussian ? 1 : 0));
  AppendPod(out, state.cached_gaussian);
}

void BuildRngPayload(const Rng& rng, const std::vector<Rng>* extra_streams,
                     std::string* out) {
  const uint64_t n_extra =
      extra_streams != nullptr ? extra_streams->size() : 0;
  AppendPod(out, static_cast<uint64_t>(1) + n_extra);  // n_streams
  AppendRngState(rng.state(), out);
  for (uint64_t i = 0; i < n_extra; ++i) {
    AppendRngState((*extra_streams)[i].state(), out);
  }
}

void BuildTrainerPayload(const TrainerState& trainer, std::string* out) {
  AppendPod(out, trainer.epochs_run);
  AppendPod(out, trainer.best_metric);
  AppendPod(out, trainer.best_epoch);
  AppendPod(out, trainer.since_best);
}

// ---------------------------------------------------------------------------
// Section payload parsers. Each stages into locals; nothing in the
// request is touched until every requested section has validated.
// ---------------------------------------------------------------------------

/// Reads one `rows x cols` tensor header + `blocks` consecutive data
/// planes of rows*cols floats each (params use 1 block, Adam m+v use 2).
Status ReadTensorBlocks(Cursor* cursor, const std::string& path, size_t index,
                        const Tensor& like, int blocks,
                        std::vector<Tensor*> out) {
  int64_t rows = 0;
  int64_t cols = 0;
  if (!cursor->ReadPod(&rows) || !cursor->ReadPod(&cols)) {
    return Corrupt(path, StrCat("truncated tensor header at index ", index));
  }
  if (rows <= 0 || cols <= 0 || rows > (int64_t{1} << 30) ||
      cols > (int64_t{1} << 30)) {
    return Corrupt(path, StrCat("impossible tensor shape ", rows, "x", cols,
                                " at index ", index));
  }
  const uint64_t numel =
      static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
  if (numel * sizeof(float) * static_cast<uint64_t>(blocks) >
      cursor->remaining()) {
    return Corrupt(path, StrCat("tensor data overruns payload at index ",
                                index));
  }
  if (rows != like.rows() || cols != like.cols()) {
    return Status::InvalidArgument(
        StrCat("shape mismatch at parameter ", index, ": file ", rows, "x",
               cols, ", model ", like.rows(), "x", like.cols()));
  }
  for (Tensor* t : out) {
    *t = Tensor(rows, cols);
    cursor->ReadBytes(t->data(), static_cast<size_t>(numel) * sizeof(float));
  }
  return Status::OK();
}

Status ParseParamsSection(const Section& section, const std::string& path,
                          const std::vector<Var>& params,
                          std::vector<Tensor>* staged) {
  Cursor cursor(section.data, section.size);
  uint64_t count = 0;
  if (!cursor.ReadPod(&count)) {
    return Corrupt(path, "truncated params section");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrCat("parameter count mismatch: file has ", count, ", model has ",
               params.size()));
  }
  staged->reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor t;
    MGBR_RETURN_NOT_OK(
        ReadTensorBlocks(&cursor, path, i, params[i].value(), 1, {&t}));
    staged->push_back(std::move(t));
  }
  if (!cursor.at_end()) {
    return Corrupt(path, "trailing bytes in params section");
  }
  return Status::OK();
}

struct StagedAdam {
  int64_t t = 0;
  float lr = 0.0f;
  std::vector<Tensor> m;
  std::vector<Tensor> v;
};

Status ParseAdamSection(const Section& section, const std::string& path,
                        const std::vector<Var>& params, StagedAdam* staged) {
  Cursor cursor(section.data, section.size);
  uint64_t count = 0;
  if (!cursor.ReadPod(&staged->t) || !cursor.ReadPod(&staged->lr) ||
      !cursor.ReadPod(&count)) {
    return Corrupt(path, "truncated optimizer section");
  }
  if (staged->t < 0) {
    return Corrupt(path, StrCat("negative Adam step count ", staged->t));
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrCat("optimizer moment count mismatch: file has ", count,
               ", model has ", params.size()));
  }
  staged->m.reserve(count);
  staged->v.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Tensor m;
    Tensor v;
    MGBR_RETURN_NOT_OK(
        ReadTensorBlocks(&cursor, path, i, params[i].value(), 2, {&m, &v}));
    staged->m.push_back(std::move(m));
    staged->v.push_back(std::move(v));
  }
  if (!cursor.at_end()) {
    return Corrupt(path, "trailing bytes in optimizer section");
  }
  return Status::OK();
}

Status ReadRngState(Cursor* cursor, const std::string& path,
                    RngState* staged) {
  uint8_t has_cached = 0;
  for (uint64_t& word : staged->s) {
    if (!cursor->ReadPod(&word)) return Corrupt(path, "truncated RNG state");
  }
  if (!cursor->ReadPod(&has_cached) ||
      !cursor->ReadPod(&staged->cached_gaussian)) {
    return Corrupt(path, "truncated RNG state");
  }
  staged->has_cached_gaussian = has_cached != 0;
  return Status::OK();
}

/// The first stream is the main Rng; `expected_extra` more follow (the
/// trainer's persistent sampler streams). A count mismatch is an
/// InvalidArgument, not corruption: the file is fine, the caller's
/// configuration (e.g. TrainConfig::sampler_streams) disagrees with it.
Status ParseRngSection(const Section& section, const std::string& path,
                       size_t expected_extra, RngState* staged,
                       std::vector<RngState>* staged_extra) {
  Cursor cursor(section.data, section.size);
  uint64_t n_streams = 0;
  if (!cursor.ReadPod(&n_streams)) {
    return Corrupt(path, "truncated RNG section");
  }
  if (n_streams != 1 + expected_extra) {
    return Status::InvalidArgument(
        StrCat("checkpoint has ", n_streams, " RNG streams, expected ",
               1 + expected_extra));
  }
  MGBR_RETURN_NOT_OK(ReadRngState(&cursor, path, staged));
  staged_extra->resize(expected_extra);
  for (size_t i = 0; i < expected_extra; ++i) {
    MGBR_RETURN_NOT_OK(ReadRngState(&cursor, path, &(*staged_extra)[i]));
  }
  if (!cursor.at_end()) {
    return Corrupt(path, "trailing bytes in RNG section");
  }
  return Status::OK();
}

Status ParseTrainerSection(const Section& section, const std::string& path,
                           TrainerState* staged) {
  Cursor cursor(section.data, section.size);
  if (!cursor.ReadPod(&staged->epochs_run) ||
      !cursor.ReadPod(&staged->best_metric) ||
      !cursor.ReadPod(&staged->best_epoch) ||
      !cursor.ReadPod(&staged->since_best) || !cursor.at_end()) {
    return Corrupt(path, "malformed trainer-state section");
  }
  if (staged->epochs_run < 0) {
    return Corrupt(path, StrCat("negative epoch count ", staged->epochs_run));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Legacy v1 ("MGBRCKP1"): unchecksummed params-only stream. Kept
// readable so pre-v2 checkpoints still load; all the hardening (bounds
// checks, shape overflow, staged commit) applies on this path too.
// ---------------------------------------------------------------------------

Status LoadLegacyV1(const std::string& path, const std::string& bytes,
                    const CheckpointReadRequest& request) {
  if (request.optimizer != nullptr || request.rng != nullptr ||
      request.trainer != nullptr) {
    return Status::NotFound(
        StrCat("legacy v1 checkpoint ", path,
               " holds parameters only; optimizer/RNG/trainer state "
               "was requested"));
  }
  Cursor cursor(bytes.data(), bytes.size());
  if (!cursor.Skip(sizeof(kMagicV1))) {
    return Corrupt(path, "file shorter than its magic");
  }
  uint64_t count = 0;
  if (!cursor.ReadPod(&count)) {
    return Corrupt(path, "truncated header");
  }
  std::vector<Var>& params = *request.params;
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrCat("parameter count mismatch: file has ", count, ", model has ",
               params.size()));
  }
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor t;
    MGBR_RETURN_NOT_OK(
        ReadTensorBlocks(&cursor, path, i, params[i].value(), 1, {&t}));
    staged.push_back(std::move(t));
  }
  if (!cursor.at_end()) {
    return Corrupt(path, "trailing bytes after last parameter");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = std::move(staged[i]);
  }
  return Status::OK();
}

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".mgbr";
constexpr char kTempSuffix[] = ".tmp";

bool HasSuffix(const std::string& name, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

/// Parses "ckpt-NNNNNN.mgbr" -> NNNNNN; -1 for anything else.
int64_t EpochFromName(const std::string& name) {
  const size_t prefix = sizeof(kCheckpointPrefix) - 1;
  const size_t suffix = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= prefix + suffix) return -1;
  if (name.compare(0, prefix, kCheckpointPrefix) != 0) return -1;
  if (!HasSuffix(name, kCheckpointSuffix)) return -1;
  int64_t epoch = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    epoch = epoch * 10 + (name[i] - '0');
  }
  return epoch;
}

}  // namespace

Status SerializeCheckpoint(const CheckpointWriteRequest& request,
                           std::string* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("SerializeCheckpoint needs an output");
  }
  if (request.params == nullptr) {
    return Status::InvalidArgument("checkpoint write request needs params");
  }

  std::string body;
  uint32_t n_sections = 0;
  if (request.fingerprint != 0) {
    std::string payload;
    AppendPod(&payload, request.fingerprint);
    AppendSection(&body, kTagConfig, payload);
    ++n_sections;
  }
  {
    std::string payload;
    MGBR_RETURN_NOT_OK(BuildParamsPayload(*request.params, &payload));
    AppendSection(&body, kTagParams, payload);
    ++n_sections;
  }
  if (request.optimizer != nullptr) {
    std::string payload;
    BuildAdamPayload(*request.optimizer, &payload);
    AppendSection(&body, kTagAdam, payload);
    ++n_sections;
  }
  if (request.rng != nullptr) {
    std::string payload;
    BuildRngPayload(*request.rng, request.rng_streams, &payload);
    AppendSection(&body, kTagRng, payload);
    ++n_sections;
  }
  if (request.trainer != nullptr) {
    std::string payload;
    BuildTrainerPayload(*request.trainer, &payload);
    AppendSection(&body, kTagTrainer, payload);
    ++n_sections;
  }

  std::string& file_bytes = *out;
  file_bytes.clear();
  file_bytes.reserve(sizeof(kMagicV2) + 2 * sizeof(uint32_t) + body.size());
  AppendBytes(&file_bytes, kMagicV2, sizeof(kMagicV2));
  AppendPod(&file_bytes, kFormatVersion);
  AppendPod(&file_bytes, n_sections);
  file_bytes.append(body);
  return Status::OK();
}

Status WriteCheckpointBytes(const std::string& bytes,
                            const std::string& path) {
  // Write-temp -> fsync -> atomic-rename: a crash at any instant leaves
  // either the previous checkpoint or the new one under `path`, never a
  // torn mix.
  const std::string tmp_path = path + kTempSuffix;
  {
    MGBR_ASSIGN_OR_RETURN(io::File file, io::File::OpenForWrite(tmp_path));
    MGBR_RETURN_NOT_OK(file.Write(bytes.data(), bytes.size()));
    MGBR_RETURN_NOT_OK(file.Sync());
    MGBR_RETURN_NOT_OK(file.Close());
  }
  fault::KillPoint("checkpoint.pre_rename");
  MGBR_RETURN_NOT_OK(io::AtomicRename(tmp_path, path));
  fault::KillPoint("checkpoint.post_rename");
  MGBR_COUNTER_ADD(SavesCounter(), 1);
  return Status::OK();
}

Status SaveCheckpoint(const CheckpointWriteRequest& request,
                      const std::string& path) {
  MGBR_TRACE_SPAN("checkpoint.save", "checkpoint");
  std::string bytes;
  MGBR_RETURN_NOT_OK(SerializeCheckpoint(request, &bytes));
  return WriteCheckpointBytes(bytes, path);
}

Status LoadCheckpoint(const std::string& path,
                      const CheckpointReadRequest& request) {
  MGBR_TRACE_SPAN("checkpoint.load", "checkpoint");
  if (request.params == nullptr) {
    return Status::InvalidArgument("checkpoint read request needs params");
  }
  MGBR_ASSIGN_OR_RETURN(std::string bytes, io::ReadFileToString(path));

  if (bytes.size() >= sizeof(kMagicV1) &&
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    MGBR_RETURN_NOT_OK(LoadLegacyV1(path, bytes, request));
    MGBR_COUNTER_ADD(LoadsCounter(), 1);
    return Status::OK();
  }
  if (bytes.size() < sizeof(kMagicV2) ||
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::InvalidArgument(StrCat("bad checkpoint magic in ", path));
  }

  // --- Section directory: every CRC verifies before any payload is
  // interpreted, so a flipped bit anywhere is caught up front.
  Cursor cursor(bytes.data(), bytes.size());
  cursor.Skip(sizeof(kMagicV2));
  uint32_t version = 0;
  uint32_t n_sections = 0;
  if (!cursor.ReadPod(&version) || !cursor.ReadPod(&n_sections)) {
    return Corrupt(path, "truncated header");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported checkpoint version ", version, " in ", path));
  }
  if (n_sections == 0 || n_sections > kMaxSections) {
    return Corrupt(path, StrCat("implausible section count ", n_sections));
  }
  std::vector<Section> sections;
  sections.reserve(n_sections);
  for (uint32_t i = 0; i < n_sections; ++i) {
    uint32_t tag = 0;
    uint32_t crc = 0;
    uint64_t size = 0;
    if (!cursor.ReadPod(&tag) || !cursor.ReadPod(&crc) ||
        !cursor.ReadPod(&size)) {
      return Corrupt(path, StrCat("truncated section header ", i));
    }
    if (size > cursor.remaining()) {
      return Corrupt(path, StrCat("section ", i, " overruns the file (",
                                  size, " bytes declared, ",
                                  cursor.remaining(), " left)"));
    }
    Section section{tag, cursor.head(), static_cast<size_t>(size)};
    cursor.Skip(static_cast<size_t>(size));
    const uint32_t actual = Crc32(section.data, section.size);
    if (actual != crc) {
      return Corrupt(path, StrCat("CRC mismatch in section ", i, " (tag ",
                                  tag, "): stored ", crc, ", computed ",
                                  actual));
    }
    sections.push_back(section);
  }
  if (!cursor.at_end()) {
    return Corrupt(path, "trailing bytes after last section");
  }

  // --- Config fingerprint gate: reject a structurally valid checkpoint
  // that belongs to a differently configured model.
  if (request.expected_fingerprint != 0) {
    const Section* cfg = FindSection(sections, kTagConfig);
    if (cfg == nullptr) {
      return Status::NotFound(
          StrCat("checkpoint ", path, " has no config fingerprint"));
    }
    Cursor cfg_cursor(cfg->data, cfg->size);
    uint64_t fingerprint = 0;
    if (!cfg_cursor.ReadPod(&fingerprint) || !cfg_cursor.at_end()) {
      return Corrupt(path, "malformed config section");
    }
    if (fingerprint != request.expected_fingerprint) {
      return Status::InvalidArgument(
          StrCat("checkpoint ", path,
                 " was written by a differently configured model "
                 "(fingerprint mismatch)"));
    }
  }

  // --- Stage every requested section...
  const Section* par = FindSection(sections, kTagParams);
  if (par == nullptr) {
    return Status::NotFound(
        StrCat("checkpoint ", path, " has no parameter section"));
  }
  std::vector<Tensor> staged_params;
  MGBR_RETURN_NOT_OK(
      ParseParamsSection(*par, path, *request.params, &staged_params));

  StagedAdam staged_adam;
  if (request.optimizer != nullptr) {
    const Section* adm = FindSection(sections, kTagAdam);
    if (adm == nullptr) {
      return Status::NotFound(
          StrCat("checkpoint ", path, " has no optimizer section"));
    }
    MGBR_RETURN_NOT_OK(
        ParseAdamSection(*adm, path, *request.params, &staged_adam));
  }

  RngState staged_rng;
  std::vector<RngState> staged_rng_extra;
  if (request.rng != nullptr) {
    const Section* rng = FindSection(sections, kTagRng);
    if (rng == nullptr) {
      return Status::NotFound(
          StrCat("checkpoint ", path, " has no RNG section"));
    }
    const size_t expected_extra =
        request.rng_streams != nullptr ? request.rng_streams->size() : 0;
    MGBR_RETURN_NOT_OK(ParseRngSection(*rng, path, expected_extra,
                                       &staged_rng, &staged_rng_extra));
  }

  TrainerState staged_trainer;
  if (request.trainer != nullptr) {
    const Section* trn = FindSection(sections, kTagTrainer);
    if (trn == nullptr) {
      return Status::NotFound(
          StrCat("checkpoint ", path, " has no trainer-state section"));
    }
    MGBR_RETURN_NOT_OK(ParseTrainerSection(*trn, path, &staged_trainer));
  }

  // --- ...then commit all-or-nothing. RestoreState re-validates against
  // the optimizer's own parameter list and is itself atomic, so it goes
  // first; the remaining commits cannot fail.
  if (request.optimizer != nullptr) {
    MGBR_RETURN_NOT_OK(request.optimizer->RestoreState(
        staged_adam.t, staged_adam.lr, std::move(staged_adam.m),
        std::move(staged_adam.v)));
  }
  for (size_t i = 0; i < request.params->size(); ++i) {
    (*request.params)[i].mutable_value() = std::move(staged_params[i]);
  }
  if (request.rng != nullptr) {
    request.rng->set_state(staged_rng);
    if (request.rng_streams != nullptr) {
      for (size_t i = 0; i < staged_rng_extra.size(); ++i) {
        (*request.rng_streams)[i].set_state(staged_rng_extra[i]);
      }
    }
  }
  if (request.trainer != nullptr) *request.trainer = staged_trainer;
  MGBR_COUNTER_ADD(LoadsCounter(), 1);
  return Status::OK();
}

Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path) {
  CheckpointWriteRequest request;
  request.params = &params;
  return SaveCheckpoint(request, path);
}

Status LoadParameters(const std::string& path, std::vector<Var>* params) {
  if (params == nullptr) {
    return Status::InvalidArgument("params must not be null");
  }
  CheckpointReadRequest request;
  request.params = params;
  return LoadCheckpoint(path, request);
}

// ---------------------------------------------------------------------------
// CheckpointManager.
// ---------------------------------------------------------------------------

CheckpointManager::CheckpointManager(std::string dir, int keep_last,
                                     bool async)
    : dir_(std::move(dir)),
      keep_last_(keep_last < 1 ? 1 : keep_last),
      async_(async) {}

CheckpointManager::~CheckpointManager() {
  const Status pending = WaitForPending();
  if (!pending.ok()) {
    MGBR_LOG_WARNING("checkpoint: async write failed (status uncollected "
                     "at destruction): ",
                     pending.ToString());
  }
}

std::string CheckpointManager::PathFor(int64_t epoch) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06lld%s", kCheckpointPrefix,
                static_cast<long long>(epoch), kCheckpointSuffix);
  return StrCat(dir_, "/", name);
}

std::vector<int64_t> CheckpointManager::ListEpochs() const {
  std::vector<int64_t> epochs;
  Result<std::vector<std::string>> entries = io::ListDir(dir_);
  if (!entries.ok()) return epochs;
  for (const std::string& name : entries.value()) {
    const int64_t epoch = EpochFromName(name);
    if (epoch >= 0) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status CheckpointManager::WriteAndRotate(const std::string& bytes,
                                         int64_t epoch) {
  MGBR_RETURN_NOT_OK(WriteCheckpointBytes(bytes, PathFor(epoch)));
  // Rotate: keep the newest keep_last_ checkpoints.
  std::vector<int64_t> epochs = ListEpochs();
  if (epochs.size() > static_cast<size_t>(keep_last_)) {
    const size_t n_prune = epochs.size() - static_cast<size_t>(keep_last_);
    for (size_t i = 0; i < n_prune; ++i) {
      MGBR_RETURN_NOT_OK(io::RemoveFile(PathFor(epochs[i])));
    }
  }
  return Status::OK();
}

Status CheckpointManager::WaitForPending() {
  if (!writer_.joinable()) return Status::OK();
  writer_.join();
  Status status = std::move(pending_status_);
  pending_status_ = Status::OK();
  return status;
}

Status CheckpointManager::Save(const CheckpointWriteRequest& request,
                               int64_t epoch) {
  MGBR_TRACE_SPAN("checkpoint.save", "checkpoint");
  // Only one write in flight: surface the previous async write's fate
  // before starting (or shadowing) the next one.
  MGBR_RETURN_NOT_OK(WaitForPending());
  MGBR_RETURN_NOT_OK(io::MakeDirs(dir_));
  // Sweep temp files left by a run that died mid-save: they never
  // became checkpoints and never will. Runs on the caller thread, so
  // it can never race the writer (which is joined above).
  Result<std::vector<std::string>> entries = io::ListDir(dir_);
  if (entries.ok()) {
    for (const std::string& name : entries.value()) {
      if (HasSuffix(name, kTempSuffix)) {
        MGBR_LOG_WARNING("checkpoint: removing stale temp file ", dir_, "/",
                         name);
        const Status removed = io::RemoveFile(StrCat(dir_, "/", name));
        (void)removed;  // stale-temp sweep is best-effort
      }
    }
  }
  // Serialize on the caller thread: the request's pointers capture live
  // training state that the train loop will mutate right after Save()
  // returns, so the snapshot must complete here. Only the immutable
  // byte image crosses the thread boundary.
  std::string bytes;
  MGBR_RETURN_NOT_OK(SerializeCheckpoint(request, &bytes));
  if (!async_) return WriteAndRotate(bytes, epoch);
  writer_ = std::thread([this, epoch, bytes = std::move(bytes)]() {
    pending_status_ = WriteAndRotate(bytes, epoch);
  });
  return Status::OK();
}

Status CheckpointManager::RestoreLatest(const CheckpointReadRequest& request,
                                        int64_t* epoch_out) {
  // An in-flight async write must land before the directory is scanned,
  // or the newest checkpoint would be invisible. A failed write is only
  // logged: older checkpoints may still restore.
  const Status pending = WaitForPending();
  if (!pending.ok()) {
    MGBR_LOG_WARNING("checkpoint: pending async write failed: ",
                     pending.ToString());
  }
  std::vector<int64_t> epochs = ListEpochs();
  bool fell_back = false;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::string path = PathFor(*it);
    const Status status = LoadCheckpoint(path, request);
    if (status.ok()) {
      if (fell_back) MGBR_COUNTER_ADD(FallbacksCounter(), 1);
      if (epoch_out != nullptr) *epoch_out = *it;
      return Status::OK();
    }
    MGBR_LOG_WARNING("checkpoint: skipping ", path, ": ", status.ToString());
    fell_back = true;
  }
  return Status::NotFound(
      StrCat("no loadable checkpoint in ", dir_, " (", epochs.size(),
             " candidate file(s) examined)"));
}

}  // namespace mgbr
