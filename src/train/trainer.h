#ifndef MGBR_TRAIN_TRAINER_H_
#define MGBR_TRAIN_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "core/mgbr.h"
#include "data/sampler.h"
#include "models/rec_model.h"
#include "tensor/optim.h"
#include "train/checkpoint.h"

namespace mgbr {

/// Knobs of the joint training loop. Paper values (Table II): lr 2e-4,
/// batch 64, 9 negatives per positive, |T| = 99; defaults here are
/// scaled to the simulator-sized dataset (larger lr, fewer negatives)
/// while keeping the loss structure identical.
struct TrainConfig {
  int64_t epochs = 12;
  size_t batch_size = 256;
  /// Negatives drawn per positive (paper's 1:9 ratio => 9).
  int64_t negs_per_pos = 2;
  /// Positive triples per auxiliary-loss step (each expands to
  /// 1 + 2|T| scored triples).
  size_t aux_batch_size = 48;
  float learning_rate = 5e-3f;
  float weight_decay = 0.0f;
  /// Global gradient-norm clip applied before each Adam step
  /// (<= 0 disables). Deep expert/gate stacks occasionally spike.
  float clip_grad_norm = 5.0f;
  /// Learning-rate decay: after `lr_decay_after` fraction of the
  /// scheduled epochs, lr is multiplied by `lr_decay_factor` once
  /// (a simple step schedule that stabilizes the final optimum).
  float lr_decay_after = 0.7f;
  float lr_decay_factor = 0.3f;
  /// β of Eq. 18 for baselines (MGBR reads β, β_A, β_B from its own
  /// MgbrConfig instead).
  float beta = 1.0f;
  uint64_t seed = 7;
  /// Persistent sampler RNG streams (0 = legacy single-stream mode).
  /// When > 0, negative sampling draws its per-chunk seeds from this
  /// many dedicated streams (round-robin) instead of the trainer's main
  /// Rng, and every stream is checkpointed in the RNG1 section, so a
  /// resumed run stays bit-identical at ANY thread count. The streams
  /// are seeded from `seed`, so results depend only on (seed,
  /// sampler_streams), never on MGBR_NUM_THREADS.
  int sampler_streams = 0;
  bool verbose = false;

  /// Crash-safe checkpointing (docs/robustness.md). Empty dir disables
  /// it. When set, the trainer writes parameters + Adam moments + RNG
  /// state + trainer bookkeeping to `<checkpoint_dir>/ckpt-NNNNNN.mgbr`
  /// every `checkpoint_every` epochs (and always at the final epoch or
  /// on a stop signal), keeping the newest `checkpoint_keep` files.
  std::string checkpoint_dir;
  int64_t checkpoint_every = 1;
  int checkpoint_keep = 3;
  /// Write checkpoints from a background thread. The training state is
  /// still serialized synchronously between epochs (so the snapshot is
  /// exact and files are byte-identical to sync mode), but the fsync +
  /// rename + rotation happen off the train thread. Write errors
  /// surface on the next checkpoint attempt or at the end of Train().
  bool async_checkpoints = false;
};

/// Per-epoch training statistics. Loss and grad-norm fields are sums
/// over the epoch's steps; divide by `steps` for per-step means (or use
/// the derived EpochTelemetry record, which stores means).
struct EpochStats {
  double loss_a = 0.0;
  double loss_b = 0.0;
  double aux_a = 0.0;
  double aux_b = 0.0;
  /// Global gradient norm summed over steps, before/after clipping.
  /// Zero when neither clipping nor telemetry asked for the norm.
  double grad_norm_pre = 0.0;
  double grad_norm_post = 0.0;
  /// Learning rate in effect during this epoch.
  double learning_rate = 0.0;
  double seconds = 0.0;
  int64_t steps = 0;
  /// Mean combined loss per step.
  double TotalLoss() const {
    return steps > 0 ? (loss_a + loss_b + aux_a + aux_b) /
                           static_cast<double>(steps)
                     : 0.0;
  }
};

/// Joint two-task trainer used by every compared model (the paper
/// trains all baselines on both sub-tasks simultaneously). For MGBR
/// models with auxiliary losses enabled, each step optimizes
///   L = L_A + β L_B + β_A L'_A + β_B L'_B          (Eq. 25)
/// and plain L = L_A + β L_B otherwise (Eq. 18). Optimizer: Adam.
class Trainer {
 public:
  /// `model` and `sampler` must outlive the trainer. If `model` is an
  /// MgbrModel whose config enables auxiliary losses, they are added
  /// automatically.
  Trainer(RecModel* model, const TrainingSampler* sampler,
          TrainConfig config);

  /// Runs one epoch over all Task A and Task B positives.
  EpochStats RunEpoch();

  /// Runs `config.epochs` epochs (or `epochs` if > 0) and returns
  /// per-epoch stats.
  std::vector<EpochStats> Train(int64_t epochs = 0);

  Adam* optimizer() { return optimizer_.get(); }

  /// Attaches a telemetry sink (may be null; must outlive the trainer).
  /// Every subsequent RunEpoch() appends one EpochTelemetry record —
  /// per-term losses, grad norms, lr, sampler effort, wall time.
  void SetTelemetry(RunTelemetry* telemetry) { telemetry_ = telemetry; }
  RunTelemetry* telemetry() const { return telemetry_; }

  /// Epoch cursor + early-stopping scoreboard, exactly what the
  /// checkpoint's TRN1 section round-trips.
  const TrainerState& state() const { return state_; }
  TrainerState* mutable_state() { return &state_; }

  /// Structural hash of the training setup (model name, parameter
  /// shapes, and the MgbrConfig when the model is an MgbrModel).
  /// Stored in every checkpoint; a resume against a different setup is
  /// rejected instead of silently mis-trained.
  uint64_t ConfigFingerprint() const;

  /// Restores the newest valid checkpoint from config.checkpoint_dir
  /// (params, Adam moments, RNG stream, trainer state) and refreshes
  /// the model. Returns the number of epochs already run (0 = nothing
  /// to resume, fresh start). Corrupt files fall back to older ones;
  /// a fingerprint mismatch or unreadable directory is an error. A
  /// resumed run continues bit-identically with an uninterrupted one.
  Result<int64_t> TryResume();

  /// Writes a checkpoint for the epochs run so far when checkpointing
  /// is enabled and the cadence (or `force`) calls for one; otherwise a
  /// no-op. With config.async_checkpoints the write completes in the
  /// background; the returned status then covers serialization and the
  /// previous pending write (see CheckpointManager::Save).
  Status MaybeCheckpoint(bool force = false);

  /// Blocks until any in-flight async checkpoint write has landed and
  /// returns its status. No-op (OK) in sync mode or when checkpointing
  /// is disabled. Train() calls this before returning.
  Status FlushCheckpoints();

 private:
  /// Lazily-created persistent manager (lives across epochs so an async
  /// writer can span the gap between checkpoints).
  CheckpointManager* Manager();

  RecModel* model_;
  MgbrModel* mgbr_;  // non-null when model_ is an MgbrModel
  const TrainingSampler* sampler_;
  TrainConfig config_;
  Rng rng_;
  /// Dedicated sampler streams (empty in legacy mode); passed to every
  /// Epoch* sampler call and round-tripped through checkpoints.
  std::vector<Rng> sampler_streams_;
  std::unique_ptr<Adam> optimizer_;
  RunTelemetry* telemetry_ = nullptr;
  TrainerState state_;
  std::unique_ptr<CheckpointManager> ckpt_manager_;
};

/// Installs SIGINT/SIGTERM handlers that set the stop flag polled by
/// Train / TrainWithEarlyStopping: the current epoch finishes, a final
/// checkpoint is written (when enabled), and the loop exits cleanly.
void InstallStopSignalHandlers();

/// True once a stop signal arrived (or RequestStop() was called).
bool StopRequested();

/// Sets / clears the stop flag programmatically (tests, embedding).
void RequestStop();
void ClearStopRequest();

/// Result of TrainWithEarlyStopping.
struct ValidatedTrainResult {
  std::vector<EpochStats> history;
  /// Best validation metric seen and the (0-based) epoch it occurred.
  double best_metric = -1e300;
  int64_t best_epoch = -1;
  /// True when training ended because patience ran out (vs max epochs).
  bool stopped_early = false;
};

/// Runs up to `max_epochs` epochs, calling `validate` (higher = better)
/// after each; stops after `patience` epochs without improvement.
/// `checkpoint_path` (optional, may be empty) receives the parameters
/// of the best epoch so callers can restore the best model with
/// LoadParameters.
ValidatedTrainResult TrainWithEarlyStopping(
    Trainer* trainer, RecModel* model,
    const std::function<double()>& validate, int64_t max_epochs,
    int64_t patience, const std::string& checkpoint_path = "");

/// Patience-based early stopping on a maximized validation metric.
class EarlyStopping {
 public:
  explicit EarlyStopping(int64_t patience) : patience_(patience) {}

  /// Records `metric`; returns true when training should stop (no
  /// improvement for `patience` consecutive updates).
  bool ShouldStop(double metric);

  double best() const { return best_; }

 private:
  int64_t patience_;
  double best_ = -1e300;
  int64_t since_best_ = 0;
};

}  // namespace mgbr

#endif  // MGBR_TRAIN_TRAINER_H_
