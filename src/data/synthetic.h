#ifndef MGBR_DATA_SYNTHETIC_H_
#define MGBR_DATA_SYNTHETIC_H_

#include "data/dataset.h"

namespace mgbr {

/// Configuration of the Beibei-like synthetic generator.
///
/// The real Beibei log is not redistributable, so experiments run on a
/// latent-factor simulation that reproduces the *causal structure* the
/// paper's models compete on (see DESIGN.md):
///   * initiators launch items they like (Task A signal in (u, i)),
///   * participants join driven by BOTH their own taste for the item
///     (p, i) AND their similarity to the initiator (p, u) — so Task B
///     genuinely needs all three objects,
///   * users live in latent communities, giving the social view
///     exploitable structure.
struct BeibeiSimConfig {
  int64_t n_users = 1200;
  int64_t n_items = 300;
  int64_t n_groups = 4000;

  /// Dimension of the latent preference space.
  int64_t latent_dim = 8;
  /// Number of user communities (Gaussian mixture components).
  int64_t n_communities = 12;
  /// Spread of users around their community center (smaller = tighter
  /// communities = stronger social signal).
  double community_spread = 0.6;

  /// Weight of initiator-participant similarity when participants
  /// decide to join (the paper's "social influence" channel).
  double social_weight = 1.6;
  /// Weight of the participant's own item affinity when joining.
  double item_affinity_weight = 1.0;
  /// Weight of log-popularity in the initiator's item choice.
  double popularity_weight = 0.5;
  /// Zipf exponent of item popularity.
  double popularity_zipf = 0.8;
  /// Weight of the *group appeal* term in the initiator's item choice:
  /// log(1 + #{community members p with θ_p·φ_i > appeal_threshold}).
  /// This is the paper's core motivation made generative — an initiator
  /// prefers items that latent participants will follow (§II-D1's
  /// cellphone example). The count is a nonlinear function of the item,
  /// so Task A genuinely benefits from Task B information, which is the
  /// correlation MGBR's shared experts exploit.
  double appeal_weight = 1.2;
  /// Affinity threshold above which a community member counts as a
  /// latent participant.
  double appeal_threshold = 1.0;
  /// Correlation between a user's initiator-role taste and
  /// participant-role taste in [0, 1]. 1 = identical (single latent);
  /// lower values make launching and joining genuinely different
  /// behaviours — the "user dual role" property that motivates
  /// role-aware models (GBGCN, MGBR) and degrades single-embedding
  /// baselines that must serve both tasks with one vector.
  double role_correlation = 0.6;
  /// Softmax temperature for both choices (lower = more deterministic
  /// = more learnable signal).
  double temperature = 0.5;

  /// Group size is 1 + Poisson(group_size_mean - 1); groups of size one
  /// (initiator only) are legal deal groups.
  double group_size_mean = 3.0;
  /// Zipf exponent of initiator activity.
  double activity_zipf = 0.7;

  uint64_t seed = 20230101;
};

/// Generates a synthetic group-buying log under `config`.
///
/// Deterministic in `config.seed`. The returned dataset is raw; apply
/// `FilterMinInteractions(5)` afterwards to mirror the paper's
/// preprocessing.
GroupBuyingDataset GenerateBeibeiSim(const BeibeiSimConfig& config);

}  // namespace mgbr

#endif  // MGBR_DATA_SYNTHETIC_H_
