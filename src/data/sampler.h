#ifndef MGBR_DATA_SAMPLER_H_
#define MGBR_DATA_SAMPLER_H_

#include <array>
#include <vector>

#include "data/dataset.h"

namespace mgbr {

/// One Task A training pair set: parallel arrays of BPR triplets
/// (initiator, positive item, sampled negative item).
struct TaskABatch {
  std::vector<int64_t> users;
  std::vector<int64_t> pos_items;
  std::vector<int64_t> neg_items;
  size_t size() const { return users.size(); }
};

/// One Task B training pair set: (initiator, item, positive
/// participant, sampled negative participant).
struct TaskBBatch {
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  std::vector<int64_t> pos_parts;
  std::vector<int64_t> neg_parts;
  size_t size() const { return users.size(); }
};

/// Auxiliary-loss corruption lists for one mini-batch of positive
/// triples t = (u, i, p) (Eqs. 21 & 24). For row b:
///   * columns [0]                 : the true triple t,
///   * columns [1, 1+n_corrupt]    : item-corrupted  (u, i', p) — T_t^I,
///   * columns [1+n_corrupt, end)  : part-corrupted  (u, i, p') — T_t^P.
/// All triples are stored flattened row-major, so scores computed on the
/// flat arrays reshape to (batch x (1 + 2*n_corrupt)).
struct AuxBatch {
  int64_t n_corrupt = 0;  // |T| of the paper
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  std::vector<int64_t> parts;
  size_t n_rows() const {
    return n_corrupt == 0 ? 0
                          : users.size() / (1 + 2 * static_cast<size_t>(
                                                        n_corrupt));
  }
  size_t row_width() const { return 1 + 2 * static_cast<size_t>(n_corrupt); }
};

/// Ranked-evaluation instance for Task A: score the positive item
/// against `neg_items` for initiator `u` (paper: 9 or 99 negatives).
struct EvalInstanceA {
  int64_t user = 0;
  int64_t pos_item = 0;
  std::vector<int64_t> neg_items;
};

/// Ranked-evaluation instance for Task B: given the group (u, i), score
/// the positive participant against `neg_parts`.
struct EvalInstanceB {
  int64_t user = 0;
  int64_t item = 0;
  int64_t pos_part = 0;
  std::vector<int64_t> neg_parts;
};

/// Rejection-sampling effort counters filled by the SampleNegative*
/// methods when a non-null pointer is passed: `draws` counts uniform
/// proposals, `rejections` the proposals discarded for hitting the
/// exclusion set. Aggregated into the "sampler.draws" /
/// "sampler.rejections" metrics once per parallel chunk.
struct NegSampleStats {
  int64_t draws = 0;
  int64_t rejections = 0;
};

/// Extracts training positives and draws negative samples per the
/// paper's protocol (§III-A2). Epoch batch construction shuffles with
/// the caller's Rng, then draws negatives chunk-parallel with one
/// derived Rng stream per fixed-size chunk (Rng::ForStream), so the
/// output is bit-identical for every MGBR_NUM_THREADS value.
///
/// Each Epoch* method optionally takes a set of persistent sampler
/// `streams`. When given (non-null, non-empty), per-chunk seeds are
/// pre-drawn serially from the streams round-robin (stream c % S feeds
/// chunk c) instead of burning one draw of the caller's Rng, so (a)
/// sampling state is decoupled from the trainer's main Rng and (b) the
/// streams can be checkpointed individually (the RNG1 section's stream
/// count; see docs/robustness.md). Results remain bit-identical at any
/// thread count because the pre-draw is serial and chunk decomposition
/// is fixed by kSamplerGrain.
/// Protocol:
///   * Task A positive: (u, i) of each deal group; negatives are items
///     u never bought (any role, judged against the FULL dataset so
///     held-out positives are never sampled as negatives).
///   * Task B positive: (u, i, p) per participant; negatives are users
///     outside G_{u,i}.
class TrainingSampler {
 public:
  /// `train` provides the positives; `full_index` (built on the whole
  /// dataset before splitting) provides the exclusion sets.
  TrainingSampler(const GroupBuyingDataset& train,
                  const InteractionIndex* full_index);

  /// All Task A positives with `negs_per_pos` fresh negatives each,
  /// shuffled; split into batches of `batch_size`.
  std::vector<TaskABatch> EpochBatchesA(
      size_t batch_size, int64_t negs_per_pos, Rng* rng,
      std::vector<Rng>* streams = nullptr) const;

  /// All Task B positives with `negs_per_pos` fresh negatives each.
  std::vector<TaskBBatch> EpochBatchesB(
      size_t batch_size, int64_t negs_per_pos, Rng* rng,
      std::vector<Rng>* streams = nullptr) const;

  /// Auxiliary corruption batches over the Task B positive triples
  /// (each (u,i,p) positive feeds both L'_A and L'_B). `n_corrupt` is
  /// the |T| of Table II.
  std::vector<AuxBatch> EpochAuxBatches(
      size_t batch_size, int64_t n_corrupt, Rng* rng,
      std::vector<Rng>* streams = nullptr) const;

  size_t n_pos_a() const { return pos_a_.size(); }
  size_t n_pos_b() const { return pos_b_.size(); }

  int64_t n_users() const { return n_users_; }
  int64_t n_items() const { return n_items_; }

  /// Draws an item u has never bought.
  int64_t SampleNegativeItem(int64_t u, Rng* rng,
                             NegSampleStats* stats = nullptr) const;
  /// Draws a user outside the group (u, i) (and != u).
  int64_t SampleNegativeParticipant(int64_t u, int64_t i, Rng* rng,
                                    NegSampleStats* stats = nullptr) const;

 private:
  int64_t n_users_;
  int64_t n_items_;
  const InteractionIndex* full_index_;
  std::vector<std::pair<int64_t, int64_t>> pos_a_;           // (u, i)
  std::vector<std::array<int64_t, 3>> pos_b_;                // (u, i, p)
};

/// Builds Task A evaluation instances from the held-out groups: one
/// instance per group with `n_negatives` negatives (9 => MRR/NDCG@10,
/// 99 => MRR/NDCG@100). `max_instances` caps the list (0 = no cap).
/// When `train_index` is given, instances whose (u, i) pair already
/// occurs in the training split are skipped, so Task A measures
/// generalization to new launches instead of recall of repeated ones.
std::vector<EvalInstanceA> BuildEvalInstancesA(
    const GroupBuyingDataset& heldout, const InteractionIndex& full_index,
    int64_t n_negatives, Rng* rng, size_t max_instances = 0,
    const InteractionIndex* train_index = nullptr);

/// Builds Task B instances: one per (group, participant). When
/// `train_index` is given, joins already observed for the same (u, i)
/// group in training are skipped (unseen-join generalization).
std::vector<EvalInstanceB> BuildEvalInstancesB(
    const GroupBuyingDataset& heldout, const InteractionIndex& full_index,
    int64_t n_negatives, Rng* rng, size_t max_instances = 0,
    const InteractionIndex* train_index = nullptr);

}  // namespace mgbr

#endif  // MGBR_DATA_SAMPLER_H_
