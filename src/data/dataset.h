#ifndef MGBR_DATA_DATASET_H_
#define MGBR_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace mgbr {

struct DatasetSplit;

/// How GroupBuyingDataset::Load treats defective rows.
///
/// In strict mode (the default) any malformed row — too few fields,
/// non-numeric or out-of-range ids — fails the whole load with an
/// InvalidArgument Status pointing at the offending row. In lenient
/// mode such rows are skipped (and within-row duplicate participants
/// dropped) with one telemetry counter per cause:
///   dataset.rows_skipped_malformed     fewer than 2 fields / bad number
///   dataset.rows_skipped_bad_initiator initiator outside [0, n_users)
///   dataset.rows_skipped_bad_item      item outside [0, n_items)
///   dataset.rows_skipped_bad_participant  participant out of range
///   dataset.duplicate_participants_dropped repeated participant or
///                                          participant == initiator
/// Header problems (missing/garbled n_users,n_items) always fail: with
/// no id space there is nothing to validate rows against.
struct DatasetLoadOptions {
  bool strict = true;
};

/// One observed deal group <u, i, G>: initiator `u` launched a group
/// buying of item `item`, joined by `participants` (possibly empty —
/// a group that dealt with the initiator alone).
struct DealGroup {
  int64_t initiator = 0;
  int64_t item = 0;
  std::vector<int64_t> participants;
};

/// A group-buying interaction log: the unit the whole pipeline works
/// on. Mirrors the Beibei dataset of the paper (§III-A): a list of deal
/// groups over `n_users` users and `n_items` items, where any user can
/// appear as initiator in some groups and participant in others.
class GroupBuyingDataset {
 public:
  GroupBuyingDataset() = default;
  GroupBuyingDataset(int64_t n_users, int64_t n_items,
                     std::vector<DealGroup> groups);

  int64_t n_users() const { return n_users_; }
  int64_t n_items() const { return n_items_; }
  const std::vector<DealGroup>& groups() const { return groups_; }
  int64_t n_groups() const { return static_cast<int64_t>(groups_.size()); }

  /// Total number of participation records (sum of group sizes).
  int64_t n_joins() const;

  /// Per-user interaction count (initiations + participations), the
  /// quantity the paper's >=5 filter applies to.
  std::vector<int64_t> UserInteractionCounts() const;

  /// Paper §III-A2 preprocessing: drops every user with fewer than
  /// `min_interactions` purchase records, then removes every group that
  /// includes a dropped user (initiator or participant). User and item
  /// ids are re-indexed densely; items with no remaining interaction
  /// are dropped too.
  GroupBuyingDataset FilterMinInteractions(int64_t min_interactions) const;

  /// Splits groups into train/validation/test with the given integer
  /// ratio parts (the paper uses 7:3:1), shuffling with `rng`.
  DatasetSplit SplitByRatio(int64_t train_part, int64_t valid_part,
                            int64_t test_part, Rng* rng) const;

  /// On-disk format (CSV, '#' comments allowed):
  ///   header row:  n_users,n_items
  ///   group rows:  initiator,item[,participant...]
  /// The single-argument overload loads strictly (see
  /// DatasetLoadOptions for the lenient skip-and-count mode).
  static Result<GroupBuyingDataset> Load(const std::string& path);
  static Result<GroupBuyingDataset> Load(const std::string& path,
                                         const DatasetLoadOptions& options);
  Status Save(const std::string& path) const;

  /// "users=..., items=..., groups=..., joins=..." summary line.
  std::string StatsString() const;

 private:
  int64_t n_users_ = 0;
  int64_t n_items_ = 0;
  std::vector<DealGroup> groups_;
};

/// Result of GroupBuyingDataset::SplitByRatio.
struct DatasetSplit {
  GroupBuyingDataset train;
  GroupBuyingDataset validation;
  GroupBuyingDataset test;
};

/// Index over a dataset answering the membership queries samplers and
/// evaluators need in O(1):
///   * which items `u` has interacted with (as initiator or participant),
///   * which users belong to group (u, i) — the `G_{u,i}` of Eq. 21.
class InteractionIndex {
 public:
  explicit InteractionIndex(const GroupBuyingDataset& dataset);

  /// True if user `u` has bought item `i` in any role.
  bool UserBoughtItem(int64_t u, int64_t i) const;

  /// True if `p` participated in (or initiated) any group of (u, i).
  bool InGroup(int64_t u, int64_t i, int64_t p) const;

  /// Items user `u` interacted with (any role).
  const std::unordered_set<int64_t>& ItemsOf(int64_t u) const;

 private:
  static uint64_t PairKey(int64_t a, int64_t b) {
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  }

  std::vector<std::unordered_set<int64_t>> user_items_;
  std::unordered_map<uint64_t, std::unordered_set<int64_t>> group_members_;
  static const std::unordered_set<int64_t> kEmpty;
};

}  // namespace mgbr

#endif  // MGBR_DATA_DATASET_H_
