#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/csv.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace mgbr {
namespace {

Counter* RowsSkippedMalformed() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dataset.rows_skipped_malformed");
  return c;
}

Counter* RowsSkippedBadInitiator() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dataset.rows_skipped_bad_initiator");
  return c;
}

Counter* RowsSkippedBadItem() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dataset.rows_skipped_bad_item");
  return c;
}

Counter* RowsSkippedBadParticipant() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dataset.rows_skipped_bad_participant");
  return c;
}

Counter* DuplicateParticipantsDropped() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dataset.duplicate_participants_dropped");
  return c;
}

}  // namespace

GroupBuyingDataset::GroupBuyingDataset(int64_t n_users, int64_t n_items,
                                       std::vector<DealGroup> groups)
    : n_users_(n_users), n_items_(n_items), groups_(std::move(groups)) {
  for (const DealGroup& g : groups_) {
    MGBR_CHECK(g.initiator >= 0 && g.initiator < n_users_);
    MGBR_CHECK(g.item >= 0 && g.item < n_items_);
    for (int64_t p : g.participants) {
      MGBR_CHECK(p >= 0 && p < n_users_);
    }
  }
}

int64_t GroupBuyingDataset::n_joins() const {
  int64_t total = 0;
  for (const DealGroup& g : groups_) {
    total += static_cast<int64_t>(g.participants.size());
  }
  return total;
}

std::vector<int64_t> GroupBuyingDataset::UserInteractionCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(n_users_), 0);
  for (const DealGroup& g : groups_) {
    ++counts[static_cast<size_t>(g.initiator)];
    for (int64_t p : g.participants) ++counts[static_cast<size_t>(p)];
  }
  return counts;
}

GroupBuyingDataset GroupBuyingDataset::FilterMinInteractions(
    int64_t min_interactions) const {
  std::vector<int64_t> counts = UserInteractionCounts();
  std::vector<bool> keep_user(static_cast<size_t>(n_users_));
  for (int64_t u = 0; u < n_users_; ++u) {
    keep_user[static_cast<size_t>(u)] =
        counts[static_cast<size_t>(u)] >= min_interactions;
  }

  // Keep only groups whose every member survives.
  std::vector<DealGroup> kept;
  for (const DealGroup& g : groups_) {
    if (!keep_user[static_cast<size_t>(g.initiator)]) continue;
    bool all = true;
    for (int64_t p : g.participants) {
      if (!keep_user[static_cast<size_t>(p)]) {
        all = false;
        break;
      }
    }
    if (all) kept.push_back(g);
  }

  // Dense re-index of surviving users and items.
  std::vector<int64_t> user_map(static_cast<size_t>(n_users_), -1);
  std::vector<int64_t> item_map(static_cast<size_t>(n_items_), -1);
  int64_t next_user = 0, next_item = 0;
  for (const DealGroup& g : kept) {
    if (user_map[static_cast<size_t>(g.initiator)] < 0) {
      user_map[static_cast<size_t>(g.initiator)] = next_user++;
    }
    for (int64_t p : g.participants) {
      if (user_map[static_cast<size_t>(p)] < 0) {
        user_map[static_cast<size_t>(p)] = next_user++;
      }
    }
    if (item_map[static_cast<size_t>(g.item)] < 0) {
      item_map[static_cast<size_t>(g.item)] = next_item++;
    }
  }
  for (DealGroup& g : kept) {
    g.initiator = user_map[static_cast<size_t>(g.initiator)];
    g.item = item_map[static_cast<size_t>(g.item)];
    for (int64_t& p : g.participants) {
      p = user_map[static_cast<size_t>(p)];
    }
  }
  return GroupBuyingDataset(next_user, next_item, std::move(kept));
}

DatasetSplit GroupBuyingDataset::SplitByRatio(
    int64_t train_part, int64_t valid_part, int64_t test_part,
    Rng* rng) const {
  MGBR_CHECK(rng != nullptr);
  MGBR_CHECK_GT(train_part, 0);
  MGBR_CHECK_GE(valid_part, 0);
  MGBR_CHECK_GT(test_part, 0);
  const int64_t total_parts = train_part + valid_part + test_part;

  std::vector<size_t> order(groups_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  const int64_t n = n_groups();
  const int64_t n_train = n * train_part / total_parts;
  const int64_t n_valid = n * valid_part / total_parts;

  std::vector<DealGroup> train, valid, test;
  for (int64_t i = 0; i < n; ++i) {
    const DealGroup& g = groups_[order[static_cast<size_t>(i)]];
    if (i < n_train) {
      train.push_back(g);
    } else if (i < n_train + n_valid) {
      valid.push_back(g);
    } else {
      test.push_back(g);
    }
  }
  return DatasetSplit{GroupBuyingDataset(n_users_, n_items_, std::move(train)),
               GroupBuyingDataset(n_users_, n_items_, std::move(valid)),
               GroupBuyingDataset(n_users_, n_items_, std::move(test))};
}

Result<GroupBuyingDataset> GroupBuyingDataset::Load(const std::string& path) {
  return Load(path, DatasetLoadOptions{});
}

Result<GroupBuyingDataset> GroupBuyingDataset::Load(
    const std::string& path, const DatasetLoadOptions& options) {
  MGBR_ASSIGN_OR_RETURN(auto rows, Csv::ReadFile(path));
  if (rows.empty()) {
    return Status::InvalidArgument(StrCat("empty dataset file: ", path));
  }
  // The header is load-bearing in both modes: without a trustworthy id
  // space there is nothing to validate the rows against.
  if (rows[0].size() != 2) {
    return Status::InvalidArgument(
        StrCat("bad header in ", path, ": expected n_users,n_items"));
  }
  long long n_users = 0, n_items = 0;
  if (!ParseInt64(rows[0][0], &n_users) || !ParseInt64(rows[0][1], &n_items)) {
    return Status::InvalidArgument(StrCat("bad header numbers in ", path));
  }
  std::vector<DealGroup> groups;
  groups.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() < 2) {
      if (options.strict) {
        return Status::InvalidArgument(
            StrCat("row ", r, " in ", path, " has fewer than 2 fields"));
      }
      MGBR_COUNTER_ADD(RowsSkippedMalformed(), 1);
      continue;
    }
    DealGroup g;
    long long v = 0;
    if (!ParseInt64(rows[r][0], &v) || v < 0 || v >= n_users) {
      if (options.strict) {
        return Status::InvalidArgument(
            StrCat("row ", r, ": bad initiator '", rows[r][0], "'"));
      }
      MGBR_COUNTER_ADD(ParseInt64(rows[r][0], &v) ? RowsSkippedBadInitiator()
                                                  : RowsSkippedMalformed(),
                       1);
      continue;
    }
    g.initiator = v;
    if (!ParseInt64(rows[r][1], &v) || v < 0 || v >= n_items) {
      if (options.strict) {
        return Status::InvalidArgument(
            StrCat("row ", r, ": bad item '", rows[r][1], "'"));
      }
      MGBR_COUNTER_ADD(ParseInt64(rows[r][1], &v) ? RowsSkippedBadItem()
                                                  : RowsSkippedMalformed(),
                       1);
      continue;
    }
    g.item = v;
    bool drop_row = false;
    std::unordered_set<int64_t> seen_participants;
    for (size_t c = 2; c < rows[r].size() && !drop_row; ++c) {
      if (!ParseInt64(rows[r][c], &v) || v < 0 || v >= n_users) {
        if (options.strict) {
          return Status::InvalidArgument(
              StrCat("row ", r, ": bad participant '", rows[r][c], "'"));
        }
        MGBR_COUNTER_ADD(ParseInt64(rows[r][c], &v)
                             ? RowsSkippedBadParticipant()
                             : RowsSkippedMalformed(),
                         1);
        drop_row = true;
        break;
      }
      // A participant repeated within one group (or doubling as the
      // initiator) is the same purchase counted twice; in lenient mode
      // drop the duplicate edge rather than the whole row. Strict mode
      // keeps the bytes as-is so Save -> Load round-trips exactly.
      if (!options.strict &&
          (v == g.initiator || !seen_participants.insert(v).second)) {
        MGBR_COUNTER_ADD(DuplicateParticipantsDropped(), 1);
        continue;
      }
      g.participants.push_back(v);
    }
    if (drop_row) continue;
    groups.push_back(std::move(g));
  }
  return GroupBuyingDataset(n_users, n_items, std::move(groups));
}

Status GroupBuyingDataset::Save(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(groups_.size() + 1);
  rows.push_back({std::to_string(n_users_), std::to_string(n_items_)});
  for (const DealGroup& g : groups_) {
    std::vector<std::string> row = {std::to_string(g.initiator),
                                    std::to_string(g.item)};
    for (int64_t p : g.participants) row.push_back(std::to_string(p));
    rows.push_back(std::move(row));
  }
  return Csv::WriteFile(path, rows);
}

std::string GroupBuyingDataset::StatsString() const {
  return StrCat("users=", n_users_, ", items=", n_items_,
                ", groups=", n_groups(), ", joins=", n_joins());
}

const std::unordered_set<int64_t> InteractionIndex::kEmpty = {};

InteractionIndex::InteractionIndex(const GroupBuyingDataset& dataset)
    : user_items_(static_cast<size_t>(dataset.n_users())) {
  for (const DealGroup& g : dataset.groups()) {
    user_items_[static_cast<size_t>(g.initiator)].insert(g.item);
    auto& members = group_members_[PairKey(g.initiator, g.item)];
    members.insert(g.initiator);
    for (int64_t p : g.participants) {
      user_items_[static_cast<size_t>(p)].insert(g.item);
      members.insert(p);
    }
  }
}

bool InteractionIndex::UserBoughtItem(int64_t u, int64_t i) const {
  MGBR_DCHECK(u >= 0 && u < static_cast<int64_t>(user_items_.size()));
  return user_items_[static_cast<size_t>(u)].count(i) > 0;
}

bool InteractionIndex::InGroup(int64_t u, int64_t i, int64_t p) const {
  auto it = group_members_.find(PairKey(u, i));
  if (it == group_members_.end()) return false;
  return it->second.count(p) > 0;
}

const std::unordered_set<int64_t>& InteractionIndex::ItemsOf(int64_t u) const {
  MGBR_DCHECK(u >= 0 && u < static_cast<int64_t>(user_items_.size()));
  return user_items_[static_cast<size_t>(u)];
}

}  // namespace mgbr
