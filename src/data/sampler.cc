#include "data/sampler.h"

#include <array>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace mgbr {

namespace {

/// Positions per sampling chunk. Each chunk draws from its own
/// Rng::ForStream(base, chunk) stream, so the sampled negatives depend
/// only on the caller's Rng state and this constant — never on the
/// thread count (see docs/parallelism.md).
constexpr int64_t kSamplerGrain = 256;

#if MGBR_TELEMETRY
Counter* DrawsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("sampler.draws");
  return c;
}

Counter* RejectionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("sampler.rejections");
  return c;
}
#endif  // MGBR_TELEMETRY

/// Per-chunk stats accumulator: counts locally in plain ints inside the
/// hot rejection loops and flushes to the global counters once per
/// chunk (no atomics per draw; nothing at all when telemetry is off).
struct ScopedSampleStats {
  NegSampleStats local;
  NegSampleStats* ptr;

  ScopedSampleStats() : ptr(TelemetryEnabled() ? &local : nullptr) {}
  ~ScopedSampleStats() {
    if (ptr != nullptr) {
      MGBR_COUNTER_ADD(DrawsCounter(), local.draws);
      MGBR_COUNTER_ADD(RejectionsCounter(), local.rejections);
    }
  }
};

/// Per-chunk seeds for one parallel sampling pass. Legacy path (no
/// persistent streams): every chunk derives from one draw of the
/// caller's Rng. Stream path: seeds are pre-drawn SERIALLY from the
/// persistent streams round-robin (stream c % S feeds chunk c), so the
/// caller's Rng is untouched and each stream advances by exactly the
/// number of chunks it fed — independent of the thread count, and
/// restorable stream-by-stream from a checkpoint's RNG1 section.
struct ChunkSeeds {
  uint64_t base_seed = 0;
  std::vector<uint64_t> per_chunk;  // empty on the legacy path

  ChunkSeeds(int64_t total, Rng* rng, std::vector<Rng>* streams) {
    if (streams == nullptr || streams->empty()) {
      base_seed = rng->Next();
      return;
    }
    const int64_t n_chunks =
        total > 0 ? (total + kSamplerGrain - 1) / kSamplerGrain : 0;
    per_chunk.resize(static_cast<size_t>(n_chunks));
    for (int64_t c = 0; c < n_chunks; ++c) {
      per_chunk[static_cast<size_t>(c)] =
          (*streams)[static_cast<size_t>(c) % streams->size()].Next();
    }
  }

  Rng RngForChunk(int64_t chunk) const {
    const uint64_t seed = per_chunk.empty()
                              ? base_seed
                              : per_chunk[static_cast<size_t>(chunk)];
    return Rng::ForStream(seed, static_cast<uint64_t>(chunk));
  }
};

}  // namespace

TrainingSampler::TrainingSampler(const GroupBuyingDataset& train,
                                 const InteractionIndex* full_index)
    : n_users_(train.n_users()),
      n_items_(train.n_items()),
      full_index_(full_index) {
  MGBR_CHECK(full_index != nullptr);
  for (const DealGroup& g : train.groups()) {
    pos_a_.emplace_back(g.initiator, g.item);
    for (int64_t p : g.participants) {
      pos_b_.push_back({g.initiator, g.item, p});
    }
  }
}

int64_t TrainingSampler::SampleNegativeItem(int64_t u, Rng* rng,
                                            NegSampleStats* stats) const {
  const auto& bought = full_index_->ItemsOf(u);
  // Guard against pathological users who bought everything.
  if (static_cast<int64_t>(bought.size()) >= n_items_) {
    if (stats != nullptr) ++stats->draws;
    return static_cast<int64_t>(rng->UniformInt(n_items_));
  }
  while (true) {
    const int64_t i = static_cast<int64_t>(rng->UniformInt(n_items_));
    if (stats != nullptr) ++stats->draws;
    if (!bought.count(i)) return i;
    if (stats != nullptr) ++stats->rejections;
  }
}

int64_t TrainingSampler::SampleNegativeParticipant(
    int64_t u, int64_t i, Rng* rng, NegSampleStats* stats) const {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const int64_t p = static_cast<int64_t>(rng->UniformInt(n_users_));
    if (stats != nullptr) ++stats->draws;
    if (p != u && !full_index_->InGroup(u, i, p)) return p;
    if (stats != nullptr) ++stats->rejections;
  }
  // Degenerate data (group covering nearly all users): fall back to any
  // non-initiator.
  int64_t p = static_cast<int64_t>(rng->UniformInt(n_users_));
  if (stats != nullptr) ++stats->draws;
  return p == u ? (p + 1) % n_users_ : p;
}

std::vector<TaskABatch> TrainingSampler::EpochBatchesA(
    size_t batch_size, int64_t negs_per_pos, Rng* rng,
    std::vector<Rng>* streams) const {
  MGBR_TRACE_SPAN("sampler.epoch_a", "sampler");
  MGBR_CHECK_GT(batch_size, 0u);
  MGBR_CHECK_GE(negs_per_pos, 1);
  std::vector<size_t> order(pos_a_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  // Draw all negatives up front, chunk-parallel with per-chunk streams.
  const int64_t total = static_cast<int64_t>(order.size()) * negs_per_pos;
  const ChunkSeeds seeds(total, rng, streams);
  std::vector<int64_t> negs(static_cast<size_t>(total));
  ParallelForChunked(
      0, total, kSamplerGrain,
      [&](int64_t chunk, int64_t lo, int64_t hi) {
        Rng local = seeds.RngForChunk(chunk);
        ScopedSampleStats stats;
        for (int64_t t = lo; t < hi; ++t) {
          const int64_t u = pos_a_[order[static_cast<size_t>(
                                      t / negs_per_pos)]].first;
          negs[static_cast<size_t>(t)] =
              SampleNegativeItem(u, &local, stats.ptr);
        }
      });

  std::vector<TaskABatch> batches;
  TaskABatch current;
  for (int64_t t = 0; t < total; ++t) {
    const auto& [u, item] = pos_a_[order[static_cast<size_t>(
                                t / negs_per_pos)]];
    current.users.push_back(u);
    current.pos_items.push_back(item);
    current.neg_items.push_back(negs[static_cast<size_t>(t)]);
    if (current.size() >= batch_size) {
      batches.push_back(std::move(current));
      current = TaskABatch();
    }
  }
  if (current.size() > 0) batches.push_back(std::move(current));
  return batches;
}

std::vector<TaskBBatch> TrainingSampler::EpochBatchesB(
    size_t batch_size, int64_t negs_per_pos, Rng* rng,
    std::vector<Rng>* streams) const {
  MGBR_TRACE_SPAN("sampler.epoch_b", "sampler");
  MGBR_CHECK_GT(batch_size, 0u);
  MGBR_CHECK_GE(negs_per_pos, 1);
  std::vector<size_t> order(pos_b_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  const int64_t total = static_cast<int64_t>(order.size()) * negs_per_pos;
  const ChunkSeeds seeds(total, rng, streams);
  std::vector<int64_t> negs(static_cast<size_t>(total));
  ParallelForChunked(
      0, total, kSamplerGrain,
      [&](int64_t chunk, int64_t lo, int64_t hi) {
        Rng local = seeds.RngForChunk(chunk);
        ScopedSampleStats stats;
        for (int64_t t = lo; t < hi; ++t) {
          const auto& pos = pos_b_[order[static_cast<size_t>(
                                       t / negs_per_pos)]];
          negs[static_cast<size_t>(t)] =
              SampleNegativeParticipant(pos[0], pos[1], &local, stats.ptr);
        }
      });

  std::vector<TaskBBatch> batches;
  TaskBBatch current;
  for (int64_t t = 0; t < total; ++t) {
    const auto& pos = pos_b_[order[static_cast<size_t>(t / negs_per_pos)]];
    current.users.push_back(pos[0]);
    current.items.push_back(pos[1]);
    current.pos_parts.push_back(pos[2]);
    current.neg_parts.push_back(negs[static_cast<size_t>(t)]);
    if (current.size() >= batch_size) {
      batches.push_back(std::move(current));
      current = TaskBBatch();
    }
  }
  if (current.size() > 0) batches.push_back(std::move(current));
  return batches;
}

std::vector<AuxBatch> TrainingSampler::EpochAuxBatches(
    size_t batch_size, int64_t n_corrupt, Rng* rng,
    std::vector<Rng>* streams) const {
  MGBR_TRACE_SPAN("sampler.epoch_aux", "sampler");
  MGBR_CHECK_GT(batch_size, 0u);
  MGBR_CHECK_GE(n_corrupt, 1);
  std::vector<size_t> order(pos_b_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  // For each positive triple draw its item corruptions (T_t^I) then its
  // participant corruptions (T_t^P), chunk-parallel over triples.
  const int64_t n_rows = static_cast<int64_t>(order.size());
  const ChunkSeeds seeds(n_rows, rng, streams);
  std::vector<int64_t> corrupt_items(
      static_cast<size_t>(n_rows * n_corrupt));
  std::vector<int64_t> corrupt_parts(
      static_cast<size_t>(n_rows * n_corrupt));
  ParallelForChunked(
      0, n_rows, kSamplerGrain,
      [&](int64_t chunk, int64_t lo, int64_t hi) {
        Rng local = seeds.RngForChunk(chunk);
        ScopedSampleStats stats;
        for (int64_t row = lo; row < hi; ++row) {
          const auto& t = pos_b_[order[static_cast<size_t>(row)]];
          for (int64_t k = 0; k < n_corrupt; ++k) {
            corrupt_items[static_cast<size_t>(row * n_corrupt + k)] =
                SampleNegativeItem(t[0], &local, stats.ptr);
          }
          for (int64_t k = 0; k < n_corrupt; ++k) {
            corrupt_parts[static_cast<size_t>(row * n_corrupt + k)] =
                SampleNegativeParticipant(t[0], t[1], &local, stats.ptr);
          }
        }
      });

  std::vector<AuxBatch> batches;
  AuxBatch current;
  current.n_corrupt = n_corrupt;
  size_t rows_in_current = 0;
  for (int64_t row = 0; row < n_rows; ++row) {
    const auto& t = pos_b_[order[static_cast<size_t>(row)]];
    const int64_t u = t[0], item = t[1], p = t[2];
    // True triple.
    current.users.push_back(u);
    current.items.push_back(item);
    current.parts.push_back(p);
    // T_t^I: corrupted items.
    for (int64_t k = 0; k < n_corrupt; ++k) {
      current.users.push_back(u);
      current.items.push_back(
          corrupt_items[static_cast<size_t>(row * n_corrupt + k)]);
      current.parts.push_back(p);
    }
    // T_t^P: corrupted participants.
    for (int64_t k = 0; k < n_corrupt; ++k) {
      current.users.push_back(u);
      current.items.push_back(item);
      current.parts.push_back(
          corrupt_parts[static_cast<size_t>(row * n_corrupt + k)]);
    }
    ++rows_in_current;
    if (rows_in_current >= batch_size) {
      batches.push_back(std::move(current));
      current = AuxBatch();
      current.n_corrupt = n_corrupt;
      rows_in_current = 0;
    }
  }
  if (rows_in_current > 0) batches.push_back(std::move(current));
  return batches;
}

std::vector<EvalInstanceA> BuildEvalInstancesA(
    const GroupBuyingDataset& heldout, const InteractionIndex& full_index,
    int64_t n_negatives, Rng* rng, size_t max_instances,
    const InteractionIndex* train_index) {
  MGBR_CHECK(rng != nullptr);
  std::vector<EvalInstanceA> out;
  const int64_t n_items = heldout.n_items();
  for (const DealGroup& g : heldout.groups()) {
    if (max_instances > 0 && out.size() >= max_instances) break;
    if (train_index != nullptr &&
        train_index->UserBoughtItem(g.initiator, g.item)) {
      continue;  // seen launch: recall, not generalization
    }
    EvalInstanceA inst;
    inst.user = g.initiator;
    inst.pos_item = g.item;
    const auto& bought = full_index.ItemsOf(g.initiator);
    inst.neg_items.reserve(static_cast<size_t>(n_negatives));
    int guard = 0;
    while (static_cast<int64_t>(inst.neg_items.size()) < n_negatives) {
      const int64_t i = static_cast<int64_t>(rng->UniformInt(n_items));
      if (bought.count(i) && ++guard < 100000) continue;
      inst.neg_items.push_back(i);
    }
    out.push_back(std::move(inst));
  }
  return out;
}

std::vector<EvalInstanceB> BuildEvalInstancesB(
    const GroupBuyingDataset& heldout, const InteractionIndex& full_index,
    int64_t n_negatives, Rng* rng, size_t max_instances,
    const InteractionIndex* train_index) {
  MGBR_CHECK(rng != nullptr);
  std::vector<EvalInstanceB> out;
  const int64_t n_users = heldout.n_users();
  for (const DealGroup& g : heldout.groups()) {
    for (int64_t p : g.participants) {
      if (max_instances > 0 && out.size() >= max_instances) break;
      if (train_index != nullptr &&
          train_index->InGroup(g.initiator, g.item, p)) {
        continue;  // seen join
      }
      EvalInstanceB inst;
      inst.user = g.initiator;
      inst.item = g.item;
      inst.pos_part = p;
      inst.neg_parts.reserve(static_cast<size_t>(n_negatives));
      int guard = 0;
      while (static_cast<int64_t>(inst.neg_parts.size()) < n_negatives) {
        const int64_t cand = static_cast<int64_t>(rng->UniformInt(n_users));
        const bool in_group =
            cand == g.initiator ||
            full_index.InGroup(g.initiator, g.item, cand);
        if (in_group && ++guard < 100000) continue;
        inst.neg_parts.push_back(cand);
      }
      out.push_back(std::move(inst));
    }
    if (max_instances > 0 && out.size() >= max_instances) break;
  }
  return out;
}

}  // namespace mgbr
