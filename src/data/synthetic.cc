#include "data/synthetic.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace mgbr {
namespace {

/// Cosine similarity of two latent vectors.
double Cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12 ? dot / denom : 0.0;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  return dot;
}

/// Zipf-like weights: w_r ∝ (r+1)^{-s}, shuffled so ids are not sorted
/// by popularity.
std::vector<double> ZipfWeights(int64_t n, double s, Rng* rng) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    w[static_cast<size_t>(r)] = std::pow(static_cast<double>(r + 1), -s);
  }
  rng->Shuffle(&w);
  return w;
}

}  // namespace

GroupBuyingDataset GenerateBeibeiSim(const BeibeiSimConfig& config) {
  MGBR_CHECK_GT(config.n_users, 1);
  MGBR_CHECK_GT(config.n_items, 1);
  MGBR_CHECK_GT(config.n_groups, 0);
  MGBR_CHECK_GT(config.latent_dim, 0);
  MGBR_CHECK_GT(config.n_communities, 0);
  MGBR_CHECK_GT(config.temperature, 0.0);

  Rng rng(config.seed);
  const int64_t k = config.latent_dim;

  // Community centers.
  std::vector<std::vector<double>> centers(
      static_cast<size_t>(config.n_communities),
      std::vector<double>(static_cast<size_t>(k)));
  for (auto& c : centers) {
    for (auto& v : c) v = rng.Gaussian();
  }

  // User latents around their community center.
  std::vector<std::vector<double>> theta(
      static_cast<size_t>(config.n_users),
      std::vector<double>(static_cast<size_t>(k)));
  std::vector<int64_t> community(static_cast<size_t>(config.n_users));
  std::vector<std::vector<int64_t>> community_members(
      static_cast<size_t>(config.n_communities));
  for (int64_t u = 0; u < config.n_users; ++u) {
    const int64_t comm = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(config.n_communities)));
    community[static_cast<size_t>(u)] = comm;
    community_members[static_cast<size_t>(comm)].push_back(u);
    const auto& center = centers[static_cast<size_t>(comm)];
    for (int64_t d = 0; d < k; ++d) {
      theta[static_cast<size_t>(u)][static_cast<size_t>(d)] =
          center[static_cast<size_t>(d)] +
          config.community_spread * rng.Gaussian();
    }
  }

  // Initiator-role latents: correlated with the participant-role
  // latents but not identical (dual-role preference).
  const double rho = config.role_correlation;
  const double rho_noise = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  std::vector<std::vector<double>> theta_init(
      static_cast<size_t>(config.n_users),
      std::vector<double>(static_cast<size_t>(k)));
  for (int64_t u = 0; u < config.n_users; ++u) {
    const auto& center = centers[static_cast<size_t>(
        community[static_cast<size_t>(u)])];
    for (int64_t d = 0; d < k; ++d) {
      const double fresh = center[static_cast<size_t>(d)] +
                           config.community_spread * rng.Gaussian();
      theta_init[static_cast<size_t>(u)][static_cast<size_t>(d)] =
          rho * theta[static_cast<size_t>(u)][static_cast<size_t>(d)] +
          rho_noise * fresh;
    }
  }

  // Item latents and popularity.
  std::vector<std::vector<double>> phi(
      static_cast<size_t>(config.n_items),
      std::vector<double>(static_cast<size_t>(k)));
  for (auto& f : phi) {
    for (auto& v : f) v = rng.Gaussian();
  }
  std::vector<double> popularity =
      ZipfWeights(config.n_items, config.popularity_zipf, &rng);

  // Group appeal per (community, item): log(1 + latent participants) —
  // the number of community members whose own affinity for the item
  // clears the threshold. Nonlinear in the item latent, so it cannot be
  // absorbed into a bilinear user-item score.
  std::vector<std::vector<double>> appeal(
      static_cast<size_t>(config.n_communities),
      std::vector<double>(static_cast<size_t>(config.n_items), 0.0));
  if (config.appeal_weight != 0.0) {
    for (int64_t c = 0; c < config.n_communities; ++c) {
      for (int64_t i = 0; i < config.n_items; ++i) {
        int64_t interested = 0;
        for (int64_t p : community_members[static_cast<size_t>(c)]) {
          if (Dot(theta[static_cast<size_t>(p)],
                  phi[static_cast<size_t>(i)]) > config.appeal_threshold) {
            ++interested;
          }
        }
        appeal[static_cast<size_t>(c)][static_cast<size_t>(i)] =
            std::log1p(static_cast<double>(interested));
      }
    }
  }
  std::vector<double> activity =
      ZipfWeights(config.n_users, config.activity_zipf, &rng);

  const double inv_temp = 1.0 / config.temperature;

  std::vector<DealGroup> groups;
  groups.reserve(static_cast<size_t>(config.n_groups));

  std::vector<double> item_scores(static_cast<size_t>(config.n_items));
  std::vector<double> join_scores(static_cast<size_t>(config.n_users));

  for (int64_t g = 0; g < config.n_groups; ++g) {
    // 1. Initiator by activity.
    const int64_t u = static_cast<int64_t>(rng.Categorical(activity));

    // 2. Item by softmax of preference + popularity (Task A ground truth).
    double mx = -1e300;
    for (int64_t i = 0; i < config.n_items; ++i) {
      double s = Dot(theta_init[static_cast<size_t>(u)],
                     phi[static_cast<size_t>(i)]) +
                 config.popularity_weight *
                     std::log(popularity[static_cast<size_t>(i)] + 1e-12) +
                 config.appeal_weight *
                     appeal[static_cast<size_t>(
                         community[static_cast<size_t>(u)])]
                           [static_cast<size_t>(i)];
      s *= inv_temp;
      item_scores[static_cast<size_t>(i)] = s;
      mx = std::max(mx, s);
    }
    for (auto& s : item_scores) s = std::exp(s - mx);
    const int64_t item = static_cast<int64_t>(rng.Categorical(item_scores));

    // 3. Participants by softmax of own item affinity + initiator
    //    similarity (Task B ground truth).
    DealGroup group;
    group.initiator = u;
    group.item = item;
    const int size = rng.Poisson(std::max(0.0, config.group_size_mean - 1.0));
    if (size > 0) {
      double mj = -1e300;
      for (int64_t p = 0; p < config.n_users; ++p) {
        double s =
            config.item_affinity_weight *
                Dot(theta[static_cast<size_t>(p)],
                    phi[static_cast<size_t>(item)]) +
            config.social_weight * Cosine(theta[static_cast<size_t>(p)],
                                          theta[static_cast<size_t>(u)]);
        s *= inv_temp;
        join_scores[static_cast<size_t>(p)] = s;
        mj = std::max(mj, s);
      }
      for (auto& s : join_scores) s = std::exp(s - mj);
      join_scores[static_cast<size_t>(u)] = 0.0;  // initiator cannot join

      std::unordered_set<int64_t> chosen;
      for (int s = 0; s < size; ++s) {
        const int64_t p = static_cast<int64_t>(rng.Categorical(join_scores));
        if (chosen.insert(p).second) {
          group.participants.push_back(p);
          join_scores[static_cast<size_t>(p)] = 0.0;  // without replacement
        }
      }
    }
    groups.push_back(std::move(group));
  }

  return GroupBuyingDataset(config.n_users, config.n_items,
                            std::move(groups));
}

}  // namespace mgbr
