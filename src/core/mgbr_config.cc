#include "core/mgbr_config.h"

#include "common/check.h"
#include "common/checksum.h"

namespace mgbr {

MgbrConfig MgbrConfig::Variant(const std::string& name) {
  MgbrConfig config;
  if (name == "MGBR") {
    return config;
  }
  if (name == "MGBR-M") {
    config.use_shared_experts = false;
    return config;
  }
  if (name == "MGBR-R") {
    config.use_aux_losses = false;
    return config;
  }
  if (name == "MGBR-M-R") {
    config.use_shared_experts = false;
    config.use_aux_losses = false;
    return config;
  }
  if (name == "MGBR-G") {
    config.alpha_a = 0.0f;
    config.alpha_b = 0.0f;
    return config;
  }
  if (name == "MGBR-D") {
    config.use_single_hin = true;
    return config;
  }
  MGBR_CHECK_MSG(false, "unknown MGBR variant: ", name);
  return config;
}

uint64_t MgbrConfig::Fingerprint(uint64_t seed) const {
  uint64_t h = seed;
  h = Fnv1a64Mix(dim, h);
  h = Fnv1a64Mix(gcn_layers, h);
  h = Fnv1a64Mix(n_experts, h);
  h = Fnv1a64Mix(mtl_layers, h);
  h = Fnv1a64Mix(alpha_a, h);
  h = Fnv1a64Mix(alpha_b, h);
  h = Fnv1a64Mix(beta, h);
  h = Fnv1a64Mix(beta_a, h);
  h = Fnv1a64Mix(beta_b, h);
  h = Fnv1a64Mix(aux_negatives, h);
  h = Fnv1a64Mix(static_cast<int>(gcn_activation), h);
  h = Fnv1a64Mix(sigmoid_head, h);
  h = Fnv1a64Mix(softmax_gates, h);
  h = Fnv1a64Mix(use_shared_experts, h);
  h = Fnv1a64Mix(use_aux_losses, h);
  h = Fnv1a64Mix(use_single_hin, h);
  return h;
}

std::string MgbrConfig::VariantName() const {
  if (use_single_hin) return "MGBR-D";
  if (!use_shared_experts && !use_aux_losses) return "MGBR-M-R";
  if (!use_shared_experts) return "MGBR-M";
  if (!use_aux_losses) return "MGBR-R";
  if (alpha_a == 0.0f && alpha_b == 0.0f) return "MGBR-G";
  return "MGBR";
}

}  // namespace mgbr
