#include "core/group_success.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace mgbr {
namespace {

/// Numerically stable log sigmoid. Model scores may be raw logits
/// (sigmoid_head = false) or probabilities already in (0,1); for the
/// latter the sigmoid squashes again, which is monotone and therefore
/// preserves the ranking this estimator produces.
double LogSigmoid(double x) {
  // log σ(x) = -softplus(-x), softplus(y) = max(y, 0) + log1p(e^{-|y|}).
  const double softplus_neg_x =
      std::max(-x, 0.0) + std::log1p(std::exp(-std::fabs(x)));
  return -softplus_neg_x;
}

}  // namespace

GroupSuccessEstimator::GroupSuccessEstimator(MgbrModel* model)
    : model_(model) {
  MGBR_CHECK(model != nullptr);
  model_->Refresh();
}

double GroupSuccessEstimator::LogSuccessScore(
    const OpenGroup& group, const std::vector<int64_t>& candidate_pool,
    int64_t threshold) {
  MGBR_CHECK(!candidate_pool.empty());
  threshold = std::min<int64_t>(threshold,
                                static_cast<int64_t>(candidate_pool.size()));
  MGBR_CHECK_GE(threshold, 1);

  // Task A term.
  Var a = model_->ScoreA({group.initiator}, {group.item});
  double total = LogSigmoid(a.value().item());

  // Task B terms: top-`threshold` candidates.
  std::vector<int64_t> users(candidate_pool.size(), group.initiator);
  std::vector<int64_t> items(candidate_pool.size(), group.item);
  Var b = model_->ScoreB(users, items, candidate_pool);
  std::vector<double> scores(candidate_pool.size());
  for (size_t k = 0; k < candidate_pool.size(); ++k) {
    scores[k] = b.value().at(static_cast<int64_t>(k), 0);
  }
  std::partial_sort(scores.begin(),
                    scores.begin() + static_cast<long>(threshold),
                    scores.end(), std::greater<double>());
  for (int64_t k = 0; k < threshold; ++k) {
    total += LogSigmoid(scores[static_cast<size_t>(k)]);
  }
  return total;
}

std::vector<size_t> GroupSuccessEstimator::RankOpenGroups(
    const std::vector<OpenGroup>& groups,
    const std::vector<int64_t>& candidate_pool, int64_t threshold) {
  std::vector<double> scores(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    scores[g] = LogSuccessScore(groups[g], candidate_pool, threshold);
  }
  std::vector<size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  return order;
}

}  // namespace mgbr
