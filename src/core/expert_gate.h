#ifndef MGBR_CORE_EXPERT_GATE_H_
#define MGBR_CORE_EXPERT_GATE_H_

#include <vector>

#include "common/rng.h"
#include "core/mgbr_config.h"
#include "tensor/variable.h"

namespace mgbr {

/// MGBR's multi-task learning module (§II-D, Eqs. 7-15): L layers, each
/// holding three sub-modules — task A, task B and shared S — of K
/// linear expert networks plus one gate.
///
/// Gates A and B are *adjusted* gates (Eqs. 10-13): the generic
/// mixture-of-experts section g1 (mixture weights from the previous
/// layer's gate outputs) plus the adjusted section g2, whose mixture
/// weights come from the pairwise object inputs:
///   gate A: (e_u||e_i) weighs E_A;  (e_i||e_p), (e_u||e_p) weigh E_S;
///   gate B: (e_u||e_i) weighs E_S;  (e_i||e_p), (e_u||e_p) weigh E_B;
/// blended as g = g1 + α·g2. Gate S is generic over all 3K experts.
///
/// Implementation choices documented in DESIGN.md:
///   * layer-1 experts consume g^0 = e_u||e_i||e_p (6d) directly — the
///     dedup reading of the paper's stated W^1 sizes;
///   * mixture weights pass through a row softmax (the MMoE/PLE
///     convention the paper's "self-attention principle" references);
///   * per-layer gate weight matrices (layer-1 input widths differ).
///
/// Variant MGBR-M (`use_shared_experts = false`) removes sub-module S:
/// expert inputs shrink to the own-gate output, the generic mixture
/// covers only the task's own K experts, and adjusted-gate terms that
/// referenced E_S are dropped.
class MultiTaskModule {
 public:
  MultiTaskModule(const MgbrConfig& config, Rng* rng);

  /// Final-layer gate outputs for a batch of triples.
  struct Output {
    Var g_a;  // B x d — feeds MLP_A
    Var g_b;  // B x d — feeds MLP_B
  };

  /// e_u, e_i, e_p are (B x 2d) rows of one triple each.
  Output Forward(const Var& e_u, const Var& e_i, const Var& e_p) const;

  std::vector<Var> Parameters() const;

  int64_t dim() const { return dim_; }

 private:
  struct Layer {
    // The K experts of a sub-module are one fused weight matrix
    // (in x K*d); expert k is the k-th d-wide column block. This is
    // mathematically identical to K separate (in x d) matrices but
    // runs as a single GEMM.
    Var experts_a;  // in_a x K*d
    Var experts_b;  // in_b x K*d
    Var experts_s;  // in_s x K*d; undefined when !shared
    Var gate_a;                  // in_a x (2K or K)
    Var gate_b;                  // in_b x (2K or K)
    Var gate_s;                  // in_s x 3K; undefined when !shared
    // Adjusted-gate weights (4d x K each); undefined when alpha == 0.
    Var adj_a_ui, adj_a_ip, adj_a_up;
    Var adj_b_ui, adj_b_ip, adj_b_up;
  };

  int64_t dim_;        // d
  int64_t n_experts_;  // K
  float alpha_a_;
  float alpha_b_;
  bool shared_;
  bool softmax_gates_;
  std::vector<Layer> layers_;
};

}  // namespace mgbr

#endif  // MGBR_CORE_EXPERT_GATE_H_
