#ifndef MGBR_CORE_MGBR_CONFIG_H_
#define MGBR_CORE_MGBR_CONFIG_H_

#include <cstdint>
#include <string>

#include "tensor/nn.h"

namespace mgbr {

/// Hyper-parameters of MGBR (paper Table II) plus the ablation
/// switches of §III-B. Defaults keep the paper's ratios but scale the
/// embedding width to the simulator-sized dataset; set `dim = 128`,
/// `aux_negatives = 99`, etc. to reproduce the paper's exact setting.
struct MgbrConfig {
  /// GCN embedding dimension d. Multi-view embeddings are 2d wide; the
  /// multi-task module works at width d.
  int64_t dim = 32;
  /// H — number of GCN layers per view.
  int64_t gcn_layers = 2;
  /// K — experts per sub-module per layer.
  int64_t n_experts = 6;
  /// L — layers of experts + gates in the multi-task module.
  int64_t mtl_layers = 2;
  /// α_A — control coefficient of the adjusted gate A (Eq. 12).
  float alpha_a = 0.1f;
  /// α_B — control coefficient of the adjusted gate B (Eq. 13).
  float alpha_b = 0.1f;
  /// β — weight of L_B in the overall loss (Eq. 25).
  float beta = 1.0f;
  /// β_A — weight of the Task A auxiliary (ListNet) loss L'_A.
  float beta_a = 0.3f;
  /// β_B — weight of the Task B auxiliary (BPR) loss L'_B.
  float beta_b = 0.3f;
  /// |T| — corruption-list size of the auxiliary losses (Table II uses
  /// 99; simulator-scale default is smaller).
  int64_t aux_negatives = 8;

  /// Activation of the multi-view GCN layers. The paper writes σ
  /// (Sigmoid); at simulator scale the saturating sigmoid trains
  /// poorly, so the default is Tanh (a documented deviation, see
  /// DESIGN.md — set kSigmoid for the literal paper form).
  Activation gcn_activation = Activation::kTanh;
  /// Apply the σ of Eqs. 16-17 to the prediction MLPs' outputs. The
  /// sigmoid is monotone, so rankings are identical either way; raw
  /// logits give BPR a stronger gradient at small scale.
  bool sigmoid_head = true;
  /// Normalize every gate's mixture weights with a row softmax (the
  /// MMoE/PLE convention; DESIGN.md §7.1). false = raw linear mixture
  /// weights, exactly as Eqs. 10-14 are written.
  bool softmax_gates = true;

  // -------------------------------------------------------------------
  // Ablation switches (Table IV).
  // -------------------------------------------------------------------

  /// false => MGBR-M: drop expert network S and gate S entirely.
  bool use_shared_experts = true;
  /// false => MGBR-R: train without L'_A and L'_B.
  bool use_aux_losses = true;
  /// true => MGBR-D: replace the three views with one GCN over the
  /// heterogeneous graph of all nodes and relations.
  bool use_single_hin = false;

  /// Builds the named variant of Table IV.
  static MgbrConfig Variant(const std::string& name);

  /// "MGBR", "MGBR-M", "MGBR-R", "MGBR-M-R", "MGBR-G" or "MGBR-D"
  /// according to the switches (alpha == 0 on both gates => -G).
  std::string VariantName() const;

  /// Structural hash of every field, mixed into `seed`. Two configs
  /// hash equal iff all hyper-parameters and ablation switches match;
  /// the checkpoint format stores it so a resume against a differently
  /// configured model is rejected instead of silently mis-trained.
  uint64_t Fingerprint(uint64_t seed = 0xCBF29CE484222325ULL) const;
};

}  // namespace mgbr

#endif  // MGBR_CORE_MGBR_CONFIG_H_
