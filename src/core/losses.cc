#include "core/losses.h"

#include "tensor/ops.h"

namespace mgbr {

Var TaskALoss(RecModel* model, const TaskABatch& batch) {
  MGBR_CHECK(model != nullptr);
  MGBR_CHECK_GT(batch.size(), 0u);
  Var pos = model->ScoreA(batch.users, batch.pos_items);
  Var neg = model->ScoreA(batch.users, batch.neg_items);
  return BprLoss(pos, neg);
}

Var TaskBLoss(RecModel* model, const TaskBBatch& batch) {
  MGBR_CHECK(model != nullptr);
  MGBR_CHECK_GT(batch.size(), 0u);
  Var pos = model->ScoreB(batch.users, batch.items, batch.pos_parts);
  Var neg = model->ScoreB(batch.users, batch.items, batch.neg_parts);
  return BprLoss(pos, neg);
}

Var AuxLossA(MgbrModel* model, const AuxBatch& batch) {
  MGBR_CHECK(model != nullptr);
  const int64_t rows = static_cast<int64_t>(batch.n_rows());
  const int64_t width = static_cast<int64_t>(batch.row_width());
  MGBR_CHECK_GT(rows, 0);

  Var flat = model->ScoreTriple(batch.users, batch.items, batch.parts);
  Var scores = Reshape(flat, rows, width);

  // Target: y=1 for the true triple (col 0) and the participant-
  // corrupted triples (cols [1+T, 1+2T)); y=0 for item-corrupted.
  // Normalized so each row sums to 1 (a proper ListNet target).
  Tensor target(rows, width);
  const int64_t t = batch.n_corrupt;
  const float mass = 1.0f / static_cast<float>(1 + t);
  for (int64_t r = 0; r < rows; ++r) {
    target.at(r, 0) = mass;
    for (int64_t k = 0; k < t; ++k) {
      target.at(r, 1 + t + k) = mass;
    }
  }
  return ListNetLoss(scores, target);
}

Var AuxLossB(MgbrModel* model, const AuxBatch& batch) {
  MGBR_CHECK(model != nullptr);
  const int64_t rows = static_cast<int64_t>(batch.n_rows());
  const int64_t width = static_cast<int64_t>(batch.row_width());
  MGBR_CHECK_GT(rows, 0);
  const int64_t t = batch.n_corrupt;

  // Task B scores of all triples in the corruption lists; only the true
  // triple (col 0) and the item-corrupted block (cols [1, 1+T)) are
  // used by Eq. 24.
  Var flat = model->ScoreB(batch.users, batch.items, batch.parts);
  Var scores = Reshape(flat, rows, width);
  Var pos = SliceCols(scores, 0, 1);          // rows x 1
  Var neg = SliceCols(scores, 1, t);          // rows x T

  // Broadcast pos across the T columns: ones(rows x T) * pos[r].
  Var ones(Tensor::Full(rows, t, 1.0f), /*requires_grad=*/false);
  Var pos_broadcast = MulColBroadcast(ones, pos);
  return Neg(Mean(LogSigmoid(Sub(pos_broadcast, neg))));
}

}  // namespace mgbr
