#include "core/multi_view.h"

#include "common/trace.h"
#include "tensor/ops.h"

namespace mgbr {

MultiViewEmbedding::MultiViewEmbedding(const GraphInputs& graphs,
                                       const MgbrConfig& config, Rng* rng)
    : n_users_(graphs.n_users),
      n_items_(graphs.n_items),
      single_hin_(config.use_single_hin),
      a_ui_(graphs.a_ui),
      a_pi_(graphs.a_pi),
      a_up_(graphs.a_up),
      a_hin_(graphs.a_hin) {
  const int64_t n_all = n_users_ + n_items_;
  if (single_hin_) {
    // One GCN of width 2d so downstream dimensions are unchanged.
    stacks_.emplace_back(n_all, 2 * config.dim, config.gcn_layers, rng,
                         config.gcn_activation);
  } else {
    const Activation act = config.gcn_activation;
    stacks_.emplace_back(n_all, config.dim, config.gcn_layers, rng, act);
    stacks_.emplace_back(n_all, config.dim, config.gcn_layers, rng, act);
    stacks_.emplace_back(n_users_, config.dim, config.gcn_layers, rng, act);
  }
}

MultiViewEmbedding::Output MultiViewEmbedding::Forward() const {
  MGBR_TRACE_SPAN("mgbr.multi_view_forward", "core");
  Output out;
  if (single_hin_) {
    Var x = stacks_[0].Forward(a_hin_);
    out.users = SliceRows(x, 0, n_users_);
    out.items = SliceRows(x, n_users_, n_items_);
    out.parts = out.users;  // no role separation in the HIN variant
    return out;
  }
  Var x_ui = stacks_[0].Forward(a_ui_);
  Var x_pi = stacks_[1].Forward(a_pi_);
  Var x_up = stacks_[2].Forward(a_up_);

  Var u_ui = SliceRows(x_ui, 0, n_users_);
  Var i_ui = SliceRows(x_ui, n_users_, n_items_);
  Var p_pi = SliceRows(x_pi, 0, n_users_);
  Var i_pi = SliceRows(x_pi, n_users_, n_items_);

  out.users = ConcatCols({u_ui, x_up});  // e_u = e_u^UI || e_u^UP
  out.items = ConcatCols({i_ui, i_pi});  // e_i = e_i^UI || e_i^PI
  out.parts = ConcatCols({p_pi, x_up});  // e_p = e_p^PI || e_p^UP
  return out;
}

std::vector<Var> MultiViewEmbedding::Parameters() const {
  std::vector<Var> params;
  for (const GcnStack& stack : stacks_) {
    for (Var& p : stack.Parameters()) params.push_back(std::move(p));
  }
  return params;
}

}  // namespace mgbr
