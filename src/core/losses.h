#ifndef MGBR_CORE_LOSSES_H_
#define MGBR_CORE_LOSSES_H_

#include "core/mgbr.h"
#include "data/sampler.h"
#include "models/rec_model.h"

namespace mgbr {

/// L_A of Eq. 19: BPR over (positive item, sampled negative item)
/// pairs. Works for any RecModel.
Var TaskALoss(RecModel* model, const TaskABatch& batch);

/// L_B of Eq. 19: BPR over (positive, negative participant) pairs.
Var TaskBLoss(RecModel* model, const TaskBBatch& batch);

/// L'_A of Eq. 21 (MGBR only): ListNet cross-entropy over each
/// positive triple's corruption list. The target distribution marks the
/// true triple and the participant-corrupted triples as relevant
/// (replacing p must hurt s(u,i,p) *less* than replacing i).
Var AuxLossA(MgbrModel* model, const AuxBatch& batch);

/// L'_B of Eq. 24 (MGBR only): BPR enforcing
/// s(p|u,i) > s(p|u,i') over the item-corrupted triples.
Var AuxLossB(MgbrModel* model, const AuxBatch& batch);

}  // namespace mgbr

#endif  // MGBR_CORE_LOSSES_H_
