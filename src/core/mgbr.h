#ifndef MGBR_CORE_MGBR_H_
#define MGBR_CORE_MGBR_H_

#include "core/expert_gate.h"
#include "core/mgbr_config.h"
#include "core/multi_view.h"
#include "models/rec_model.h"
#include "tensor/nn.h"

namespace mgbr {

/// MGBR — the paper's model (Fig. 2): multi-view GCN embeddings feed a
/// multi-task expert/gate module whose final gate outputs feed two
/// prediction MLPs:
///   s(i|u)   = σ(MLP_A(MTL_A(e_u || e_i || e_p)))   (Eq. 16)
///   s(p|u,i) = σ(MLP_B(MTL_B(e_u || e_i || e_p)))   (Eq. 17)
/// In Task A scoring, e_p is the mean participant embedding over all
/// users; in Task B it is the candidate participant's embedding. The
/// ablated variants of Table IV are configuration switches
/// (MgbrConfig::Variant).
class MgbrModel : public RecModel {
 public:
  MgbrModel(const GraphInputs& graphs, const MgbrConfig& config, Rng* rng);

  std::string name() const override { return config_.VariantName(); }
  std::vector<Var> Parameters() const override;
  void Refresh() override;
  Var ScoreA(const std::vector<int64_t>& users,
             const std::vector<int64_t>& items) override;
  Var ScoreB(const std::vector<int64_t>& users,
             const std::vector<int64_t>& items,
             const std::vector<int64_t>& parts) override;

  int64_t num_users() const override { return views_.n_users(); }
  int64_t num_items() const override { return views_.n_items(); }

  /// Full-catalogue Task A inference: the whole item table feeds the
  /// MTL module and MLP_A as one batch (no per-candidate gather); e_p
  /// is the mean-participant broadcast cached by Refresh.
  Var ScoreAAll(int64_t u) override;

  /// Full-catalogue Task B inference: every user scored as candidate
  /// participant of (u, item); the participant table feeds the MTL
  /// module in place.
  Var ScoreBAll(int64_t u, int64_t item) override;

  /// s(u, i, p) of Eq. 20: the Task A head evaluated with an explicit
  /// participant embedding instead of the user mean. Used by the
  /// auxiliary ListNet loss L'_A.
  Var ScoreTriple(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  const std::vector<int64_t>& parts);

  const MgbrConfig& config() const { return config_; }

  /// Cached propagated embeddings (valid after Refresh); used by the
  /// Fig. 6 case study and by tests.
  const Var& user_embeddings() const { return emb_.users; }
  const Var& item_embeddings() const { return emb_.items; }
  const Var& part_embeddings() const { return emb_.parts; }

 private:
  /// Shared scoring path: gathers triple embeddings, runs the MTL
  /// module, applies the requested head.
  MultiTaskModule::Output RunMtl(const std::vector<int64_t>& users,
                                 const std::vector<int64_t>& items,
                                 const Var& e_p);

  MgbrConfig config_;
  MultiViewEmbedding views_;
  MultiTaskModule mtl_;
  Mlp mlp_a_;
  Mlp mlp_b_;
  MultiViewEmbedding::Output emb_;  // cached by Refresh
  Var mean_part_;                   // 1 x 2d, cached by Refresh
  // Detached mean-participant broadcast over the item catalogue
  // (n_items x 2d), cached once per Refresh so ScoreAAll never
  // recomputes e_p. Built eagerly (not lazily) so concurrent eval
  // threads only ever read it.
  Var mean_part_all_items_;
};

}  // namespace mgbr

#endif  // MGBR_CORE_MGBR_H_
