#include "core/mgbr.h"

#include "common/trace.h"
#include "models/model_util.h"
#include "tensor/ops.h"

namespace mgbr {
namespace {

std::vector<int64_t> MlpDims(int64_t d) { return {d, d, 1}; }

}  // namespace

MgbrModel::MgbrModel(const GraphInputs& graphs, const MgbrConfig& config,
                     Rng* rng)
    : config_(config),
      views_(graphs, config, rng),
      mtl_(config, rng),
      mlp_a_(MlpDims(config.dim), rng, Activation::kRelu, Activation::kNone),
      mlp_b_(MlpDims(config.dim), rng, Activation::kRelu, Activation::kNone) {}

std::vector<Var> MgbrModel::Parameters() const {
  std::vector<Var> params;
  AppendParams(&params, views_.Parameters());
  AppendParams(&params, mtl_.Parameters());
  AppendParams(&params, mlp_a_.Parameters());
  AppendParams(&params, mlp_b_.Parameters());
  return params;
}

void MgbrModel::Refresh() {
  MGBR_TRACE_SPAN("mgbr.refresh", "core");
  emb_ = views_.Forward();
  mean_part_ = MeanOverRows(emb_.parts);
  NoGradScope no_grad;
  mean_part_all_items_ = BroadcastRow(mean_part_, views_.n_items());
}

MultiTaskModule::Output MgbrModel::RunMtl(const std::vector<int64_t>& users,
                                          const std::vector<int64_t>& items,
                                          const Var& e_p) {
  MGBR_CHECK(emb_.users.defined());
  Var e_u = Rows(emb_.users, users);
  Var e_i = Rows(emb_.items, items);
  return mtl_.Forward(e_u, e_i, e_p);
}

Var MgbrModel::ScoreA(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items) {
  MGBR_TRACE_SPAN("mgbr.score_a", "core");
  MGBR_CHECK(mean_part_.defined());
  // Task A uses the average of all users' participant-role embeddings
  // as e_p (paper, end of §II-E).
  Var e_p = BroadcastRow(mean_part_, static_cast<int64_t>(users.size()));
  MultiTaskModule::Output out = RunMtl(users, items, e_p);
  Var logits = mlp_a_.Forward(out.g_a);
  return config_.sigmoid_head ? Sigmoid(logits) : logits;
}

Var MgbrModel::ScoreB(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items,
                      const std::vector<int64_t>& parts) {
  MGBR_TRACE_SPAN("mgbr.score_b", "core");
  Var e_p = Rows(emb_.parts, parts);
  MultiTaskModule::Output out = RunMtl(users, items, e_p);
  Var logits = mlp_b_.Forward(out.g_b);
  return config_.sigmoid_head ? Sigmoid(logits) : logits;
}

Var MgbrModel::ScoreAAll(int64_t u) {
  MGBR_TRACE_SPAN("mgbr.score_a_all", "core");
  MGBR_CHECK(mean_part_all_items_.defined());
  NoGradScope no_grad;
  // The item table is the e_i batch: every op downstream (ConcatCols,
  // MatMul, BlockMix, RowSoftmax, BiasAct) computes row i from row i
  // alone, so score i is bitwise identical to ScoreA({u}, {i}).
  Var e_u = BroadcastRow(Rows(emb_.users, {u}), views_.n_items());
  MultiTaskModule::Output out =
      mtl_.Forward(e_u, emb_.items, mean_part_all_items_);
  Var logits = mlp_a_.Forward(out.g_a);
  return config_.sigmoid_head ? Sigmoid(logits) : logits;
}

Var MgbrModel::ScoreBAll(int64_t u, int64_t item) {
  MGBR_TRACE_SPAN("mgbr.score_b_all", "core");
  MGBR_CHECK(emb_.parts.defined());
  NoGradScope no_grad;
  const int64_t n = views_.n_users();
  Var e_u = BroadcastRow(Rows(emb_.users, {u}), n);
  Var e_i = BroadcastRow(Rows(emb_.items, {item}), n);
  MultiTaskModule::Output out = mtl_.Forward(e_u, e_i, emb_.parts);
  Var logits = mlp_b_.Forward(out.g_b);
  return config_.sigmoid_head ? Sigmoid(logits) : logits;
}

Var MgbrModel::ScoreTriple(const std::vector<int64_t>& users,
                           const std::vector<int64_t>& items,
                           const std::vector<int64_t>& parts) {
  MGBR_TRACE_SPAN("mgbr.score_triple", "core");
  Var e_p = Rows(emb_.parts, parts);
  MultiTaskModule::Output out = RunMtl(users, items, e_p);
  Var logits = mlp_a_.Forward(out.g_a);
  return config_.sigmoid_head ? Sigmoid(logits) : logits;
}

}  // namespace mgbr
