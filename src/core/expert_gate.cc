#include "core/expert_gate.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace mgbr {
namespace {

}  // namespace

MultiTaskModule::MultiTaskModule(const MgbrConfig& config, Rng* rng)
    : dim_(config.dim),
      n_experts_(config.n_experts),
      alpha_a_(config.alpha_a),
      alpha_b_(config.alpha_b),
      shared_(config.use_shared_experts),
      softmax_gates_(config.softmax_gates) {
  MGBR_CHECK_GE(config.mtl_layers, 1);
  MGBR_CHECK_GE(n_experts_, 1);
  const int64_t d = dim_;
  const int64_t k = n_experts_;
  const int64_t g0_width = 6 * d;  // e_u||e_i||e_p with e_* in R^{2d}

  for (int64_t l = 0; l < config.mtl_layers; ++l) {
    Layer layer;
    const bool first = (l == 0);
    const int64_t in_a = first ? g0_width : (shared_ ? 2 * d : d);
    const int64_t in_b = in_a;
    const int64_t in_s = first ? g0_width : 3 * d;

    layer.experts_a = Var(XavierInit(in_a, k * d, rng), true);
    layer.experts_b = Var(XavierInit(in_b, k * d, rng), true);
    if (shared_) {
      layer.experts_s = Var(XavierInit(in_s, k * d, rng), true);
    }
    const int64_t mix_a = shared_ ? 2 * k : k;
    layer.gate_a = Var(XavierInit(in_a, mix_a, rng), true);
    layer.gate_b = Var(XavierInit(in_b, mix_a, rng), true);
    // g_S^L is never consumed (only g_A^L and g_B^L feed the heads),
    // so the final layer carries no gate-S mixing weight.
    if (shared_ && l + 1 < config.mtl_layers) {
      layer.gate_s = Var(XavierInit(in_s, 3 * k, rng), true);
    }
    if (alpha_a_ != 0.0f) {
      layer.adj_a_ui = Var(XavierInit(4 * d, k, rng), true);
      if (shared_) {
        layer.adj_a_ip = Var(XavierInit(4 * d, k, rng), true);
        layer.adj_a_up = Var(XavierInit(4 * d, k, rng), true);
      }
    }
    if (alpha_b_ != 0.0f) {
      if (shared_) {
        layer.adj_b_ui = Var(XavierInit(4 * d, k, rng), true);
      }
      layer.adj_b_ip = Var(XavierInit(4 * d, k, rng), true);
      layer.adj_b_up = Var(XavierInit(4 * d, k, rng), true);
    }
    layers_.push_back(std::move(layer));
  }
}

MultiTaskModule::Output MultiTaskModule::Forward(const Var& e_u,
                                                 const Var& e_i,
                                                 const Var& e_p) const {
#if MGBR_TELEMETRY
  MGBR_TRACE_SPAN("mtl.forward", "core");
  static Counter* rows_counter =
      MetricsRegistry::Global().GetCounter("mtl.forward_rows");
  MGBR_COUNTER_ADD(rows_counter, e_u.rows());
#endif  // MGBR_TELEMETRY
  MGBR_CHECK_EQ(e_u.cols(), 2 * dim_);
  MGBR_CHECK(e_u.value().same_shape(e_i.value()));
  MGBR_CHECK(e_u.value().same_shape(e_p.value()));
  const int64_t d = dim_;

  // Attentive mixture over the d-wide blocks of `blocks`; mixture
  // weights optionally pass through a row softmax (DESIGN.md §7.1).
  auto Mix = [this, d](const Var& blocks, const Var& logits,
                       int64_t block_dim) {
    (void)d;
    return BlockMix(blocks,
                    softmax_gates_ ? RowSoftmax(logits) : logits,
                    block_dim);
  };

  // Pairwise inputs of the adjusted gates (Eq. 11/13), layer-invariant.
  const Var c_ui = ConcatCols({e_u, e_i});
  const Var c_ip = ConcatCols({e_i, e_p});
  const Var c_up = ConcatCols({e_u, e_p});

  // Eq. 15: g^0 for all three gates.
  const Var g0 = ConcatCols({e_u, e_i, e_p});
  Var g_a = g0, g_b = g0, g_s = g0;

  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool first = (l == 0);

    // Expert inputs (Eqs. 7-9; layer 1 uses g^0 alone).
    Var in_a = first ? g0 : (shared_ ? ConcatCols({g_a, g_s}) : g_a);
    Var in_b = first ? g0 : (shared_ ? ConcatCols({g_b, g_s}) : g_b);
    Var in_s;
    if (shared_) in_s = first ? g0 : ConcatCols({g_a, g_s, g_b});

    // All K experts of a sub-module in one GEMM: (B x in) @ (in x K*d).
    Var ex_a = MatMul(in_a, layer.experts_a);
    Var ex_b = MatMul(in_b, layer.experts_b);
    Var ex_s;
    if (shared_) ex_s = MatMul(in_s, layer.experts_s);

    // Generic gate sections (Eq. 10 for A; symmetric for B; Eq. 14 S).
    const Var basis_a = shared_ ? ConcatCols({ex_a, ex_s}) : ex_a;
    const Var basis_b = shared_ ? ConcatCols({ex_b, ex_s}) : ex_b;
    Var g_a1 = Mix(basis_a, MatMul(in_a, layer.gate_a), d);
    Var g_b1 = Mix(basis_b, MatMul(in_b, layer.gate_b), d);

    // Adjusted gate sections (Eqs. 11-13).
    Var new_g_a = g_a1;
    if (alpha_a_ != 0.0f) {
      Var g_a2 = Mix(ex_a, MatMul(c_ui, layer.adj_a_ui), d);
      if (shared_) {
        g_a2 = Add(g_a2, Mix(ex_s, MatMul(c_ip, layer.adj_a_ip), d));
        g_a2 = Add(g_a2, Mix(ex_s, MatMul(c_up, layer.adj_a_up), d));
      }
      new_g_a = Add(g_a1, MulScalar(g_a2, alpha_a_));
    }
    Var new_g_b = g_b1;
    if (alpha_b_ != 0.0f) {
      Var g_b2 = Mix(ex_b, MatMul(c_ip, layer.adj_b_ip), d);
      g_b2 = Add(g_b2, Mix(ex_b, MatMul(c_up, layer.adj_b_up), d));
      if (shared_) {
        g_b2 = Add(g_b2, Mix(ex_s, MatMul(c_ui, layer.adj_b_ui), d));
      }
      new_g_b = Add(g_b1, MulScalar(g_b2, alpha_b_));
    }
    Var new_g_s;
    const bool last = (l + 1 == layers_.size());
    if (shared_ && !last) {
      new_g_s = Mix(ConcatCols({ex_a, ex_s, ex_b}),
                    MatMul(in_s, layer.gate_s), d);
    }

    g_a = new_g_a;
    g_b = new_g_b;
    if (shared_ && !last) g_s = new_g_s;
  }
  return Output{g_a, g_b};
}

std::vector<Var> MultiTaskModule::Parameters() const {
  std::vector<Var> params;
  auto add = [&params](const Var& v) {
    if (v.defined()) params.push_back(v);
  };
  for (const Layer& layer : layers_) {
    add(layer.experts_a);
    add(layer.experts_b);
    add(layer.experts_s);
    add(layer.gate_a);
    add(layer.gate_b);
    add(layer.gate_s);
    add(layer.adj_a_ui);
    add(layer.adj_a_ip);
    add(layer.adj_a_up);
    add(layer.adj_b_ui);
    add(layer.adj_b_ip);
    add(layer.adj_b_up);
  }
  return params;
}

}  // namespace mgbr
