#ifndef MGBR_CORE_GROUP_SUCCESS_H_
#define MGBR_CORE_GROUP_SUCCESS_H_

#include <cstdint>
#include <vector>

#include "core/mgbr.h"

namespace mgbr {

/// Extension built on the paper's task formalization (§II-A): the
/// probability of observing a dealt group factorizes as
///   P(u, i, p_1..p_m) ∝ P(i|u) · Π_k P(p_k | u, i).
/// This estimator turns a trained MGBR into a *group success* score:
/// given an open group (u, i), a candidate participant pool and the
/// deal threshold m (participants needed), it combines the Task A
/// score with the m strongest Task B scores in log space. Useful for
/// ranking open campaigns by how likely they are to fire — a direct
/// product application the paper motivates but does not evaluate.
class GroupSuccessEstimator {
 public:
  /// `model` must be trained and outlive the estimator; Refresh() is
  /// called once here so scoring reuses cached embeddings.
  explicit GroupSuccessEstimator(MgbrModel* model);

  /// An open (launched, not yet dealt) group.
  struct OpenGroup {
    int64_t initiator = 0;
    int64_t item = 0;
  };

  /// log σ(s(i|u)) + Σ over the `threshold` best candidates of
  /// log σ(s(p|u,i)). Higher = more likely to deal. `threshold` is
  /// clamped to the pool size.
  double LogSuccessScore(const OpenGroup& group,
                         const std::vector<int64_t>& candidate_pool,
                         int64_t threshold);

  /// Indices into `groups`, most-likely-to-deal first.
  std::vector<size_t> RankOpenGroups(
      const std::vector<OpenGroup>& groups,
      const std::vector<int64_t>& candidate_pool, int64_t threshold);

 private:
  MgbrModel* model_;
};

}  // namespace mgbr

#endif  // MGBR_CORE_GROUP_SUCCESS_H_
