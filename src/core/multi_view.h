#ifndef MGBR_CORE_MULTI_VIEW_H_
#define MGBR_CORE_MULTI_VIEW_H_

#include <vector>

#include "core/mgbr_config.h"
#include "graph/gcn.h"
#include "models/graph_inputs.h"

namespace mgbr {

/// MGBR's multi-view embedding learning module (§II-C).
///
/// Three GCNs run over the three views; each object sits in exactly two
/// views, and its embedding is the concatenation of its two final-layer
/// view embeddings (Eqs. 4-6):
///   e_u = e_u^{UI} || e_u^{UP},   e_i = e_i^{UI} || e_i^{PI},
///   e_p = e_p^{PI} || e_p^{UP},   all in R^{2d}.
///
/// With `use_single_hin` (variant MGBR-D) a single GCN of width 2d runs
/// over the heterogeneous graph instead, and e_u = e_p (one user
/// embedding, no role separation).
class MultiViewEmbedding {
 public:
  MultiViewEmbedding(const GraphInputs& graphs, const MgbrConfig& config,
                     Rng* rng);

  /// Propagated embeddings of one refresh. Vars stay connected to the
  /// tape, so losses backprop into the GCN weights and X^0.
  struct Output {
    Var users;  // U x 2d — initiator-role embeddings e_u
    Var items;  // I x 2d — item embeddings e_i
    Var parts;  // U x 2d — participant-role embeddings e_p
  };

  /// Runs all GCNs and assembles the concatenated embeddings.
  Output Forward() const;

  std::vector<Var> Parameters() const;

  int64_t n_users() const { return n_users_; }
  int64_t n_items() const { return n_items_; }

 private:
  int64_t n_users_;
  int64_t n_items_;
  bool single_hin_;
  SharedCsr a_ui_;
  SharedCsr a_pi_;
  SharedCsr a_up_;
  SharedCsr a_hin_;
  // Three-view stacks (unused when single_hin_).
  std::vector<GcnStack> stacks_;  // [UI, PI, UP] or [HIN]
};

}  // namespace mgbr

#endif  // MGBR_CORE_MULTI_VIEW_H_
